"""Unit tests for the storage substrate."""

import pytest

from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.sim import Simulator
from repro.storage import BlockDevice, ChunkStore, ReplicaSet, ReplicationPolicy, StorageServer
from repro.units import gbps, usec


class TestBlockDevice:
    def test_write_latency(self):
        sim = Simulator()
        disk = BlockDevice(sim, write_latency=usec(20), bandwidth=1e9)
        done = []

        def body():
            yield disk.write(0)
            done.append(sim.now)

        sim.process(body())
        sim.run()
        assert done[0] == pytest.approx(usec(20))

    def test_bandwidth_term(self):
        sim = Simulator()
        disk = BlockDevice(sim, write_latency=0.0, bandwidth=1000.0)

        def body():
            yield disk.write(500)

        sim.process(body())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_queue_depth_limits_parallelism(self):
        sim = Simulator()
        disk = BlockDevice(sim, write_latency=1.0, bandwidth=1e12, queue_depth=2)
        done = []

        def body():
            yield disk.write(1)
            done.append(sim.now)

        for _ in range(4):
            sim.process(body())
        sim.run()
        assert done == pytest.approx([1.0, 1.0, 2.0, 2.0], rel=1e-6)

    def test_counters_and_meters(self):
        sim = Simulator()
        disk = BlockDevice(sim)

        def body():
            yield disk.write(100)
            yield disk.read(200)

        sim.process(body())
        sim.run()
        assert disk.writes.value == 1 and disk.reads.value == 1
        assert disk.write_meter.total_bytes == 100
        assert disk.read_meter.total_bytes == 200


class TestChunkStore:
    def test_append_and_read(self):
        store = ChunkStore()
        record = store.append(chunk_id=1, block_id=7, size=3, data=b"abc")
        assert store.read(record.location).data == b"abc"

    def test_latest_returns_newest_version(self):
        store = ChunkStore()
        store.append(1, 7, 4, b"old!")
        newer = store.append(1, 7, 4, b"new!")
        assert store.latest(1, 7).location == newer.location

    def test_latest_missing_returns_none(self):
        assert ChunkStore().latest(1, 99) is None

    def test_gc_reclaims_dead_entries(self):
        store = ChunkStore()
        record = store.append(1, 7, 100)
        store.append(1, 8, 50)
        store.mark_dead(record.location)
        assert store.gc(1) == 100
        assert store.bytes_reclaimed == 100
        with pytest.raises(KeyError):
            store.read(record.location)

    def test_gc_keeps_live_entries(self):
        store = ChunkStore()
        record = store.append(1, 7, 100)
        assert store.gc(1) == 0
        assert store.read(record.location).size == 100

    def test_snapshot_pins_entries_across_gc(self):
        store = ChunkStore()
        record = store.append(1, 7, 100, b"x" * 100)
        snap = store.snapshot()
        store.mark_dead(record.location)
        assert store.gc(1) == 0  # pinned by the snapshot
        blocks = store.snapshot_blocks(snap)
        assert [b.location for b in blocks] == [record.location]
        store.drop_snapshot(snap)
        assert store.gc(1) == 100

    def test_live_bytes_tracks_state(self):
        store = ChunkStore()
        a = store.append(1, 1, 10)
        store.append(1, 2, 20)
        assert store.live_bytes == 30
        store.mark_dead(a.location)
        assert store.live_bytes == 20

    def test_unknown_location_rejected(self):
        store = ChunkStore()
        with pytest.raises(KeyError):
            store.mark_dead(123)
        with pytest.raises(KeyError):
            store.read(123)
        with pytest.raises(KeyError):
            store.snapshot_blocks(5)


class TestReplicationPolicy:
    def _servers(self, sim, n):
        return [StorageServer(sim, f"s{i}") for i in range(n)]

    def test_chooses_distinct_servers(self):
        sim = Simulator()
        policy = ReplicationPolicy(self._servers(sim, 5), replication=3)
        chosen = policy.choose()
        assert len({s.address for s in chosen}) == 3

    def test_balances_outstanding_load(self):
        sim = Simulator()
        servers = self._servers(sim, 4)
        policy = ReplicationPolicy(servers, replication=3)
        first = policy.choose()
        second = policy.choose()
        # The one server skipped in round 1 must appear in round 2.
        skipped = set(s.address for s in servers) - set(s.address for s in first)
        assert skipped <= set(s.address for s in second)

    def test_complete_releases_load(self):
        sim = Simulator()
        servers = self._servers(sim, 3)
        policy = ReplicationPolicy(servers, replication=3)
        chosen = policy.choose()
        for server in chosen:
            policy.complete(server)
        assert all(policy.outstanding(s) == 0 for s in servers)

    def test_excludes_failed_servers(self):
        sim = Simulator()
        servers = self._servers(sim, 4)
        servers[0].fail()
        policy = ReplicationPolicy(servers, replication=3)
        chosen = policy.choose()
        assert servers[0].address not in {s.address for s in chosen}

    def test_too_few_healthy_servers_raises(self):
        sim = Simulator()
        servers = self._servers(sim, 3)
        servers[0].fail()
        policy = ReplicationPolicy(servers, replication=3)
        with pytest.raises(RuntimeError):
            policy.choose()

    def test_too_few_servers_rejected_at_build(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ReplicationPolicy(self._servers(sim, 2), replication=3)


class TestReplicaSet:
    def test_durable_after_all_acks(self):
        rs = ReplicaSet(block_id=1, targets=("a", "b", "c"))
        rs.ack("a")
        rs.ack("b")
        assert not rs.is_durable
        assert rs.missing == ("c",)
        rs.ack("c")
        assert rs.is_durable

    def test_foreign_ack_rejected(self):
        rs = ReplicaSet(block_id=1, targets=("a",))
        with pytest.raises(ValueError):
            rs.ack("z")


class TestStorageServer:
    def _connect(self, sim):
        server = StorageServer(sim, "stor0")
        port = NetworkPort(sim, rate=gbps(100), name="mt.port")
        mt = RoceEndpoint(sim, port, "mt")
        qp = server.accept_from(mt)
        return server, qp

    def test_write_then_ack(self):
        sim = Simulator()
        server, qp = self._connect(sim)
        acks = []

        def client():
            msg = Message(
                "storage_write",
                "mt",
                "stor0",
                payload=Payload.from_bytes(b"z" * 512),
                header={"chunk_id": 3, "block_id": 9},
            )
            yield qp.send(msg)
            ack = yield qp.recv()
            acks.append(ack)

        sim.process(client())
        sim.run()
        assert acks and acks[0].kind == "storage_ack"
        assert server.store.latest(3, 9).data == b"z" * 512
        assert server.writes_served.value == 1

    def test_read_returns_stored_bytes(self):
        sim = Simulator()
        server, qp = self._connect(sim)
        replies = []

        def client():
            write = Message(
                "storage_write",
                "mt",
                "stor0",
                payload=Payload.from_bytes(b"q" * 256),
                header={"chunk_id": 1, "block_id": 5},
            )
            yield qp.send(write)
            yield qp.recv()
            read = Message("storage_read", "mt", "stor0", header={"chunk_id": 1, "block_id": 5})
            yield qp.send(read)
            reply = yield qp.recv()
            replies.append(reply)

        sim.process(client())
        sim.run()
        assert replies[0].kind == "storage_read_reply"
        assert replies[0].payload.data == b"q" * 256

    def test_read_miss(self):
        sim = Simulator()
        server, qp = self._connect(sim)
        replies = []

        def client():
            read = Message("storage_read", "mt", "stor0", header={"chunk_id": 1, "block_id": 5})
            yield qp.send(read)
            replies.append((yield qp.recv()))

        sim.process(client())
        sim.run()
        assert replies[0].kind == "storage_read_miss"

    @pytest.mark.drain_audit_exempt  # the client waits forever, by design
    def test_failed_server_goes_silent(self):
        sim = Simulator()
        server, qp = self._connect(sim)
        server.fail()
        acks = []

        def client():
            msg = Message("storage_write", "mt", "stor0", payload=Payload.from_bytes(b"x" * 64))
            yield qp.send(msg)
            acks.append((yield qp.recv()))

        sim.process(client())
        sim.run(until=1.0)
        assert not acks

    def test_recovered_server_serves_again(self):
        sim = Simulator()
        server, qp = self._connect(sim)
        server.fail()
        server.recover()
        acks = []

        def client():
            msg = Message("storage_write", "mt", "stor0", payload=Payload.from_bytes(b"x" * 64))
            yield qp.send(msg)
            acks.append((yield qp.recv()))

        sim.process(client())
        sim.run(until=1.0)
        assert acks

"""Tests for request generation, the client driver, and the MLC injector."""

import pytest

from repro.compression import SilesiaLikeCorpus
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.params import PlatformSpec
from repro.sim import Simulator
from repro.units import msec, usec
from repro.workloads import (
    ClientDriver,
    MlcInjector,
    SkewedReadFactory,
    WriteRequestFactory,
)


class TestWriteRequestFactory:
    def test_synthetic_requests_have_paper_shape(self):
        factory = WriteRequestFactory()
        message = factory.make()
        assert message.kind == "write_request"
        assert message.header_size == 64
        assert message.payload.size == 4096
        assert message.payload.data is None

    def test_lbas_are_sequential_and_mapped(self):
        platform = PlatformSpec()
        factory = WriteRequestFactory(platform)
        first = factory.make()
        second = factory.make()
        assert first.header["block_id"] == 0
        assert second.header["block_id"] == 1
        blocks_per_chunk = platform.storage.chunk_bytes // platform.workload.block_size
        deep = None
        for _ in range(2):
            deep = factory.make()
        assert factory.make().header["chunk_id"] == 0
        # A block one chunk in lands in chunk 1.
        factory._next_lba = blocks_per_chunk
        assert factory.make().header["chunk_id"] == 1

    def test_functional_mode_carries_real_bytes(self):
        blocks = SilesiaLikeCorpus(seed=1, file_size=4096).blocks(4096)[:4]
        factory = WriteRequestFactory(blocks=blocks)
        message = factory.make()
        assert message.payload.data == blocks[0]

    def test_latency_sensitive_fraction(self):
        factory = WriteRequestFactory(latency_sensitive_fraction=1.0)
        assert factory.make().header["latency_sensitive"]
        factory = WriteRequestFactory(latency_sensitive_fraction=0.0)
        assert not factory.make().header["latency_sensitive"]

    def test_deterministic_given_seed(self):
        a = WriteRequestFactory(latency_sensitive_fraction=0.5, seed=5)
        b = WriteRequestFactory(latency_sensitive_fraction=0.5, seed=5)
        flags_a = [a.make().header["latency_sensitive"] for _ in range(20)]
        flags_b = [b.make().header["latency_sensitive"] for _ in range(20)]
        assert flags_a == flags_b

    def test_make_read(self):
        factory = WriteRequestFactory()
        read = factory.make_read(lba=17)
        assert read.kind == "read_request"
        assert read.header["block_id"] == 17
        assert read.payload is None

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WriteRequestFactory(latency_sensitive_fraction=1.5)
        with pytest.raises(ValueError):
            WriteRequestFactory(blocks=[])


class TestClientDriver:
    def _run(self, n_requests=60, concurrency=4, warmup=0.1):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=2),
            concurrency=concurrency,
            warmup_fraction=warmup,
        )
        result = sim.run(until=driver.run(n_requests))
        return driver, result

    def test_all_requests_complete(self):
        driver, result = self._run()
        # warmup excluded: 60 * 0.9 = 54 measured
        assert result.requests == 54

    def test_throughput_positive(self):
        _driver, result = self._run()
        assert result.throughput > 0
        assert result.payload_bytes == result.requests * 4096

    def test_latency_samples_match_requests(self):
        _driver, result = self._run()
        assert result.latency.count == result.requests

    def test_zero_warmup_keeps_all(self):
        _driver, result = self._run(warmup=0.0)
        assert result.requests == 60

    def test_no_unmatched_replies(self):
        driver, _result = self._run()
        assert driver.replies_unmatched.value == 0

    def test_invalid_args(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=1)
        factory = WriteRequestFactory(testbed.platform)
        with pytest.raises(ValueError):
            ClientDriver(sim, tier, factory, concurrency=0)
        with pytest.raises(ValueError):
            ClientDriver(sim, tier, factory, concurrency=1, warmup_fraction=0.9)
        driver = ClientDriver(sim, tier, factory, concurrency=8)
        with pytest.raises(ValueError):
            driver.run(4)  # below concurrency


class TestSkewedReadFactory:
    def test_empirical_hottest_key_frequency_matches_zipf(self):
        """Property: over a long sample, the rank-1 LBA's observed
        frequency converges on ``expected_frequency(1)``."""
        factory = WriteRequestFactory()
        for n_blocks, skew, seed in ((64, 0.99, 0), (128, 1.2, 3), (32, 0.8, 7)):
            skewed = SkewedReadFactory(factory, n_blocks, skew=skew, seed=seed)
            n_samples = 20_000
            hot_hits = sum(skewed.next_lba() == skewed.hottest_lba for _ in range(n_samples))
            expected = skewed.expected_frequency(1)
            assert abs(hot_hits / n_samples - expected) < 0.15 * expected + 0.01, (
                n_blocks,
                skew,
                seed,
            )

    def test_skew_zero_is_uniform(self):
        skewed = SkewedReadFactory(WriteRequestFactory(), n_blocks=10, skew=0.0)
        for rank in (1, 5, 10):
            assert skewed.expected_frequency(rank) == pytest.approx(0.1)

    def test_rank_frequencies_decay_and_sum_to_one(self):
        skewed = SkewedReadFactory(WriteRequestFactory(), n_blocks=50, skew=0.99)
        frequencies = [skewed.expected_frequency(rank) for rank in range(1, 51)]
        assert frequencies == sorted(frequencies, reverse=True)
        assert sum(frequencies) == pytest.approx(1.0)

    def test_hot_set_is_shuffled_not_first_written(self):
        # Across seeds the rank-1 LBA moves: the hot set comes from the
        # seeded shuffle, not from write order.
        hot = {SkewedReadFactory(WriteRequestFactory(), 64, seed=s).hottest_lba for s in range(8)}
        assert len(hot) > 1

    def test_deterministic_given_seed(self):
        a = SkewedReadFactory(WriteRequestFactory(), 64, skew=0.99, seed=9)
        b = SkewedReadFactory(WriteRequestFactory(), 64, skew=0.99, seed=9)
        assert [a.next_lba() for _ in range(50)] == [b.next_lba() for _ in range(50)]

    def test_make_builds_read_requests_in_range(self):
        factory = WriteRequestFactory()
        skewed = SkewedReadFactory(factory, n_blocks=16, skew=1.0, seed=1)
        for _ in range(64):
            message = skewed.make()
            assert message.kind == "read_request"
            assert 0 <= message.header["block_id"] < 16

    def test_invalid_args(self):
        factory = WriteRequestFactory()
        with pytest.raises(ValueError):
            SkewedReadFactory(factory, n_blocks=0)
        with pytest.raises(ValueError):
            SkewedReadFactory(factory, n_blocks=4, skew=-0.1)
        skewed = SkewedReadFactory(factory, n_blocks=4)
        with pytest.raises(ValueError):
            skewed.expected_frequency(0)
        with pytest.raises(ValueError):
            skewed.expected_frequency(5)


class TestReadFailureSurfacing:
    def _testbed(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=4),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(8))
        return sim, testbed, tier, driver

    def test_all_ok_reads_have_no_failures(self):
        sim, _testbed, _tier, driver = self._testbed()
        result = sim.run(until=driver.run_reads([0, 1, 2, 3], concurrency=2))
        assert result.failures == ()
        assert result.failed_lbas == ()
        assert result.ok_requests == 4

    def test_unavailable_reads_surface_their_lbas(self):
        """When one LBA's whole replica set is down, the aggregate still
        completes — but the result names exactly which LBA failed."""
        sim, testbed, tier, driver = self._testbed()
        for address in tier._block_locations[(0, 2)]:
            testbed.server(address).fail()
        result = sim.run(until=driver.run_reads([0, 1, 2, 3], concurrency=1))
        assert result.requests == 4
        failed = dict(result.failures)
        assert set(failed) == {2} or 2 in failed  # LBA 2 named, others maybe collateral
        assert failed[2] == "unavailable"
        assert 2 in result.failed_lbas
        assert result.ok_requests == result.requests - len(result.failures)
        assert tier.reads_unavailable.value >= 1
        for address in tier._block_locations[(0, 2)]:
            testbed.server(address).recover()
        sim.run()

    def test_unwritten_lba_fails_as_not_found(self):
        sim, _testbed, _tier, driver = self._testbed()
        result = sim.run(until=driver.run_reads([0, 999], concurrency=1))
        assert result.failures == ((999, "not_found"),)
        assert result.ok_requests == 1


class TestMlcInjector:
    def test_injects_bandwidth(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        mlc = MlcInjector(sim, memory, n_threads=4, delay=0.0, chunk=4096)
        mlc.start()
        sim.run(until=msec(1))
        assert mlc.achieved_bandwidth(msec(1)) > 0
        assert memory.total_bytes == mlc.meter.total_bytes

    def test_delay_reduces_pressure(self):
        def bandwidth(delay):
            sim = Simulator()
            memory = MemorySubsystem.for_host(sim)
            mlc = MlcInjector(sim, memory, n_threads=4, delay=delay, chunk=4096)
            mlc.start()
            sim.run(until=msec(1))
            return mlc.achieved_bandwidth(msec(1))

        assert bandwidth(usec(10)) < 0.5 * bandwidth(0.0)

    def test_read_fraction_splits_traffic(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        mlc = MlcInjector(sim, memory, n_threads=1, delay=0.0, chunk=4096, read_fraction=0.5)
        mlc.start()
        sim.run(until=msec(1))
        total = memory.read_meter.total_bytes + memory.write_meter.total_bytes
        assert abs(memory.read_meter.total_bytes / total - 0.5) < 0.1

    def test_stop_halts_injection(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        mlc = MlcInjector(sim, memory, n_threads=2, delay=0.0)
        mlc.start()
        sim.run(until=msec(0.5))
        mlc.stop()
        sim.run(until=msec(0.6))
        frozen = mlc.meter.total_bytes
        sim.run(until=msec(2))
        assert mlc.meter.total_bytes == frozen

    def test_start_idempotent(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        mlc = MlcInjector(sim, memory, n_threads=2, delay=0.0)
        mlc.start()
        mlc.start()
        sim.run(until=usec(50))
        # 2 threads, not 4: bandwidth bounded accordingly.
        assert mlc.meter.events > 0

    def test_invalid_args(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        with pytest.raises(ValueError):
            MlcInjector(sim, memory, n_threads=-1, delay=0.0)
        with pytest.raises(ValueError):
            MlcInjector(sim, memory, n_threads=1, delay=-1.0)
        with pytest.raises(ValueError):
            MlcInjector(sim, memory, n_threads=1, delay=0.0, chunk=0)
        with pytest.raises(ValueError):
            MlcInjector(sim, memory, n_threads=1, delay=0.0, read_fraction=2.0)

"""Tests for the open-loop driver and the BlueField-3 extension design."""

import pytest

from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.middletier.soc_smartnic import BlueField3MiddleTier
from repro.params import BlueField3Spec
from repro.sim import Simulator
from repro.units import gbps, to_gbps
from repro.workloads import ClientDriver, WriteRequestFactory
from repro.workloads.generators import OpenLoopDriver


class TestOpenLoopDriver:
    def _run(self, offered_rps, n_requests=200):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=8)
        driver = OpenLoopDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=1),
            offered_rate=offered_rps,
            seed=5,
        )
        result = sim.run(until=driver.run(n_requests))
        return result

    def test_achieved_tracks_offered_below_capacity(self):
        offered_rps = 100_000  # ~3.3 Gb/s, far below the 8-worker peak
        result = self._run(offered_rps)
        achieved_rps = result.requests / result.duration
        assert achieved_rps == pytest.approx(offered_rps, rel=0.25)

    def test_latency_grows_near_saturation(self):
        light = self._run(50_000)
        # 8 workers serve ~465 k req/s; offering beyond that builds a
        # queue that grows for the whole run.
        heavy = self._run(540_000, n_requests=600)
        assert heavy.latency.mean() > 1.5 * light.latency.mean()

    def test_all_requests_measured_without_warmup(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4)
        driver = OpenLoopDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=1),
            offered_rate=50_000,
            warmup_fraction=0.0,
        )
        result = sim.run(until=driver.run(50))
        assert result.requests == 50

    def test_deterministic_given_seed(self):
        a = self._run(100_000, n_requests=100)
        b = self._run(100_000, n_requests=100)
        assert a.latency.samples == b.latency.samples

    def test_invalid_args(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        factory = WriteRequestFactory(testbed.platform)
        with pytest.raises(ValueError):
            OpenLoopDriver(sim, tier, factory, offered_rate=0.0)
        driver = OpenLoopDriver(sim, tier, factory, offered_rate=1000.0)
        with pytest.raises(ValueError):
            driver.run(0)


class TestBlueField3:
    def test_spec_calibration(self):
        spec = BlueField3Spec()
        assert spec.per_core_compression_rate == pytest.approx(gbps(50) / 16)
        assert spec.port_rate == gbps(400)

    def test_throughput_capped_by_arm_compression(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = BlueField3MiddleTier(sim, testbed)
        driver = ClientDriver(
            sim, tier, WriteRequestFactory(testbed.platform, seed=1), concurrency=256
        )
        result = sim.run(until=driver.run(2500))
        # ~50 Gb/s of Arm compression against 400 Gb/s networking (§3.4).
        assert 35 < to_gbps(result.throughput) < 55

    def test_no_host_memory_involved(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = BlueField3MiddleTier(sim, testbed)
        driver = ClientDriver(
            sim, tier, WriteRequestFactory(testbed.platform, seed=1), concurrency=16
        )
        sim.run(until=driver.run(64))
        assert tier.device_memory.total_bytes > 0  # payloads cross device DDR

    def test_core_count_validated(self):
        sim = Simulator()
        testbed = Testbed(sim)
        with pytest.raises(ValueError):
            BlueField3MiddleTier(sim, testbed, n_workers=17)

    def test_replication_still_three_way(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = BlueField3MiddleTier(sim, testbed)
        driver = ClientDriver(
            sim, tier, WriteRequestFactory(testbed.platform, seed=1), concurrency=8
        )
        sim.run(until=driver.run(32))
        total = sum(s.writes_served.value for s in testbed.storage_servers)
        assert total == tier.requests_completed.value * 3

"""Order-of-magnitude performance guards for the hot paths.

These are not benchmarks — ``benchmarks/perf`` measures; this file only
refuses catastrophic regressions (an accidental O(n^2) queue, a codec
that falls off a cliff). Every threshold sits ~10x below what the
harness measures on a modest container, so scheduler noise and slow CI
runners pass with a wide margin while a complexity-class regression
still fails loudly.

Measured references (see BENCH_10.json / docs/performance.md):
kernel ~700K events/s, resource deep-queue ~1.2M ops/s, LZ4 compress
~9 MB/s on text blocks, decompress ~20 MB/s, macro experiments
~250K events/s with the bandwidth fast path off.

The vs-seed guards assert relative speed (current >= seed on the same
machine in the same process, interleaved) rather than absolute MB/s, so
they hold on any hardware: the vectorized codec falling behind the seed
scalar scan — the exact regression BENCH_6 recorded for text blocks at
0.93x — fails loudly regardless of how slow the runner is.
"""

import os
import time

import pytest

from repro.compression import lz4_compress, lz4_decompress
from repro.compression.corpus import SilesiaLikeCorpus
from repro.sim import Resource, Simulator
from repro.sim import kernel as sim_kernel


def _best_of(body, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


class TestPerfGuards:
    def test_kernel_events_per_sec_floor(self):
        n = 20_000

        def drive():
            sim = Simulator()
            for i in range(n):
                sim.timeout(i * 1e-9)
            sim.run()
            return sim.steps

        events = drive()
        seconds = _best_of(drive)
        assert events / seconds > 50_000, (
            f"kernel fell to {events / seconds:,.0f} events/s "
            "(harness measures ~600K; guard is 50K)"
        )

    def test_resource_deep_queue_ops_floor(self):
        depth = 4_000

        def drive():
            sim = Simulator()
            resource = Resource(sim, capacity=1, name="guard")
            held = resource.request()
            waiters = [resource.request(priority=-i) for i in range(depth)]
            resource.release(held)
            for waiter in waiters:
                resource.release(waiter)
            sim.run()

        seconds = _best_of(drive)
        ops_per_sec = 2 * depth / seconds
        assert ops_per_sec > 50_000, (
            f"deep-queue throughput fell to {ops_per_sec:,.0f} ops/s "
            "(harness measures ~1.2M; the seed's sorted list managed ~8K)"
        )

    def test_lz4_compress_mb_per_sec_floor(self):
        # A small representative sample: one text block run, one
        # low-redundancy block run — ~100 KiB total keeps this test fast.
        files = {f.name: f.data for f in SilesiaLikeCorpus().files()}
        sample = files["dickens-0"][:65536] + files["x-ray-0"][:65536]
        blocks = [sample[i : i + 4096] for i in range(0, len(sample), 4096)]

        def drive():
            for block in blocks:
                lz4_compress(block)

        seconds = _best_of(drive)
        mb_per_sec = len(sample) / seconds / 1e6
        assert mb_per_sec > 0.5, (
            f"lz4 compress fell to {mb_per_sec:.2f} MB/s "
            "(harness measures ~6 MB/s on corpus blocks; guard is 0.5)"
        )

    def test_lz4_decompress_mb_per_sec_floor(self):
        files = {f.name: f.data for f in SilesiaLikeCorpus().files()}
        sample = files["dickens-0"][:131072]
        blobs = [
            lz4_compress(sample[i : i + 4096]) for i in range(0, len(sample), 4096)
        ]

        def drive():
            for blob in blobs:
                lz4_decompress(blob)

        seconds = _best_of(drive)
        mb_per_sec = len(sample) / seconds / 1e6
        assert mb_per_sec > 1.0, (
            f"lz4 decompress fell to {mb_per_sec:.2f} MB/s "
            "(harness measures ~20 MB/s; guard is 1.0)"
        )

    def test_lz4_text_compress_not_slower_than_seed(self):
        # BENCH_6 recorded the match-dense text class at 0.93x vs the
        # seed — the one input class where the bounded-table scan lost
        # ground. The vectorized codec must never fall behind the seed
        # again on this class; measured interleaved in-process so the
        # ratio is machine-independent.
        legacy = pytest.importorskip("benchmarks.perf.legacy")
        files = {f.name: f.data for f in SilesiaLikeCorpus().files()}
        sample = files["dickens-0"] + files["webster-0"][:65536]
        blocks = [sample[i : i + 4096] for i in range(0, len(sample), 4096)]

        best_current = best_seed = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for block in blocks:
                lz4_compress(block)
            best_current = min(best_current, time.perf_counter() - started)
            started = time.perf_counter()
            for block in blocks:
                legacy.legacy_lz4_compress(block)
            best_seed = min(best_seed, time.perf_counter() - started)
        speedup = best_seed / best_current
        assert speedup >= 1.0, (
            f"lz4 text-block compress is {speedup:.2f}x vs the seed "
            "(must be >= 1.0x; BENCH_6 had regressed to 0.93x)"
        )

    def test_macro_events_per_sec_floors(self):
        # Quick experiment runs with the bandwidth fast path off (the
        # fixed reference event stream): floors sit ~10x below the
        # ~250K events/s BENCH_10 measures so only complexity-class
        # regressions in the kernel or model hot paths trip them.
        from repro.experiments import ext_cache, ext_chaos

        previous = os.environ.get("REPRO_BW_FAST_PATH")
        os.environ["REPRO_BW_FAST_PATH"] = "0"
        try:
            for name, module in (("ext_cache", ext_cache), ("ext_chaos", ext_chaos)):
                sims = []
                sim_kernel.add_sim_hook(sims.append)
                try:
                    started = time.perf_counter()
                    module.run(quick=True)
                    seconds = time.perf_counter() - started
                finally:
                    sim_kernel.remove_sim_hook(sims.append)
                events = sum(sim.steps for sim in sims)
                events_per_sec = events / seconds
                assert events_per_sec > 25_000, (
                    f"{name} fell to {events_per_sec:,.0f} events/s "
                    "(BENCH_10 measures ~250K fast-off; guard is 25K)"
                )
        finally:
            if previous is None:
                del os.environ["REPRO_BW_FAST_PATH"]
            else:
                os.environ["REPRO_BW_FAST_PATH"] = previous

"""Order-of-magnitude performance guards for the hot paths.

These are not benchmarks — ``benchmarks/perf`` measures; this file only
refuses catastrophic regressions (an accidental O(n^2) queue, a codec
that falls off a cliff). Every threshold sits ~10x below what the
harness measures on a modest container, so scheduler noise and slow CI
runners pass with a wide margin while a complexity-class regression
still fails loudly.

Measured references (see BENCH_6.json / docs/performance.md):
kernel ~600K events/s, resource deep-queue ~1.2M ops/s, LZ4 compress
~6 MB/s on corpus blocks, decompress ~15 MB/s.
"""

import time

from repro.compression import lz4_compress, lz4_decompress
from repro.compression.corpus import SilesiaLikeCorpus
from repro.sim import Resource, Simulator


def _best_of(body, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        body()
        best = min(best, time.perf_counter() - started)
    return best


class TestPerfGuards:
    def test_kernel_events_per_sec_floor(self):
        n = 20_000

        def drive():
            sim = Simulator()
            for i in range(n):
                sim.timeout(i * 1e-9)
            sim.run()
            return sim.steps

        events = drive()
        seconds = _best_of(drive)
        assert events / seconds > 50_000, (
            f"kernel fell to {events / seconds:,.0f} events/s "
            "(harness measures ~600K; guard is 50K)"
        )

    def test_resource_deep_queue_ops_floor(self):
        depth = 4_000

        def drive():
            sim = Simulator()
            resource = Resource(sim, capacity=1, name="guard")
            held = resource.request()
            waiters = [resource.request(priority=-i) for i in range(depth)]
            resource.release(held)
            for waiter in waiters:
                resource.release(waiter)
            sim.run()

        seconds = _best_of(drive)
        ops_per_sec = 2 * depth / seconds
        assert ops_per_sec > 50_000, (
            f"deep-queue throughput fell to {ops_per_sec:,.0f} ops/s "
            "(harness measures ~1.2M; the seed's sorted list managed ~8K)"
        )

    def test_lz4_compress_mb_per_sec_floor(self):
        # A small representative sample: one text block run, one
        # low-redundancy block run — ~100 KiB total keeps this test fast.
        files = {f.name: f.data for f in SilesiaLikeCorpus().files()}
        sample = files["dickens-0"][:65536] + files["x-ray-0"][:65536]
        blocks = [sample[i : i + 4096] for i in range(0, len(sample), 4096)]

        def drive():
            for block in blocks:
                lz4_compress(block)

        seconds = _best_of(drive)
        mb_per_sec = len(sample) / seconds / 1e6
        assert mb_per_sec > 0.5, (
            f"lz4 compress fell to {mb_per_sec:.2f} MB/s "
            "(harness measures ~6 MB/s on corpus blocks; guard is 0.5)"
        )

    def test_lz4_decompress_mb_per_sec_floor(self):
        files = {f.name: f.data for f in SilesiaLikeCorpus().files()}
        sample = files["dickens-0"][:131072]
        blobs = [
            lz4_compress(sample[i : i + 4096]) for i in range(0, len(sample), 4096)
        ]

        def drive():
            for blob in blobs:
                lz4_decompress(blob)

        seconds = _best_of(drive)
        mb_per_sec = len(sample) / seconds / 1e6
        assert mb_per_sec > 1.0, (
            f"lz4 decompress fell to {mb_per_sec:.2f} MB/s "
            "(harness measures ~15 MB/s; guard is 1.0)"
        )

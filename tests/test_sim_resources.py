"""Unit tests for Resource, Store, and BandwidthServer."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import BandwidthServer, Resource, SimulationError, Simulator, Store


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker():
            req = resource.request()
            yield req
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            resource.release(req)

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(peak) == 2

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            req = resource.request()
            yield req
            order.append(tag)
            yield sim.timeout(1.0)
            resource.release(req)

        for tag in range(4):
            sim.process(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_priority_jumps_queue(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, priority, start):
            yield sim.timeout(start)
            req = resource.request(priority=priority)
            yield req
            order.append(tag)
            yield sim.timeout(10.0)
            resource.release(req)

        sim.process(worker("first", 0, 0.0))
        sim.process(worker("low", 5, 1.0))
        sim.process(worker("high", 1, 2.0))
        sim.run()
        assert order == ["first", "high", "low"]

    def test_use_helper_releases_on_completion(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            yield sim.process(resource.use(2.0))

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert sim.now == 4.0
        assert resource.in_use == 0

    def test_release_of_queued_request_cancels_it(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        queued = resource.request()
        assert resource.queue_length == 1
        resource.release(queued)
        assert resource.queue_length == 0
        resource.release(holder)
        assert resource.in_use == 0

    def test_cancel_is_not_a_release(self):
        """Cancelling a queued request must not grant a phantom slot."""
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        holder = resource.request()
        queued_a = resource.request()
        queued_b = resource.request()
        resource.release(queued_a)  # cancel the middle waiter
        assert resource.in_use == 1  # holder still owns the only slot
        assert not queued_b.triggered  # b did not get a slot out of thin air
        resource.release(holder)
        assert queued_b.triggered  # b inherits the real slot

    def test_double_cancel_raises(self):
        """Cancelling the same queued request twice is a model bug.

        Regression: ``_waiting.remove`` used to raise a bare
        ``ValueError: list.remove(x)`` — now it is a ``SimulationError``
        naming the resource.
        """
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        resource.request()
        queued = resource.request()
        resource.release(queued)
        with pytest.raises(SimulationError, match="not queued"):
            resource.release(queued)

    def test_release_on_idle_resource_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        granted = resource.request()
        resource.release(granted)
        with pytest.raises(SimulationError, match="idle"):
            resource.release(granted)

    def test_release_checks_ownership(self):
        sim = Simulator()
        mine = Resource(sim, capacity=1, name="mine")
        other = Resource(sim, capacity=1, name="other")
        req = mine.request()
        with pytest.raises(SimulationError, match="does not belong"):
            other.release(req)

    def test_equal_priorities_keep_arrival_order(self):
        """The priority insert is stable: ties are served FIFO."""
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, priority, start):
            yield sim.timeout(start)
            req = resource.request(priority=priority)
            yield req
            order.append(tag)
            yield sim.timeout(10.0)
            resource.release(req)

        sim.process(worker("holder", 0, 0.0))
        sim.process(worker("a", 1, 1.0))
        sim.process(worker("b", 1, 2.0))
        sim.process(worker("c", 1, 3.0))
        sim.process(worker("urgent", 0, 4.0))
        sim.run()
        assert order == ["holder", "urgent", "a", "b", "c"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.process(consumer())
        store.put("block")
        sim.run()
        assert got == ["block"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for item in ["a", "b", "c"]:
            store.put(item)
        got = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_bounded_put_blocks_until_space(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put("one")
            events.append(("put one", sim.now))
            yield store.put("two")
            events.append(("put two", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            item = yield store.get()
            events.append((f"got {item}", sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put two", 5.0) in events

    def test_blocked_putters_wake_in_fifo_order(self):
        """Items from blocked putters enter the buffer in arrival order."""
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def producer(tag, start):
            yield sim.timeout(start)
            yield store.put(tag)

        def consumer():
            yield sim.timeout(10.0)
            for _ in range(4):
                got.append((yield store.get()))

        sim.process(producer("a", 0.0))  # fills the single slot
        sim.process(producer("b", 1.0))  # blocks
        sim.process(producer("c", 2.0))  # blocks behind b
        sim.process(producer("d", 3.0))  # blocks behind c
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c", "d"]

    def test_put_hands_item_straight_to_waiting_getter(self):
        """With a getter parked, put bypasses the buffer entirely."""
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []

        def consumer(tag):
            got.append((tag, (yield store.get())))

        def producer():
            yield sim.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.process(producer())
        sim.run()
        assert got == [("first", "x"), ("second", "y")]
        assert len(store) == 0

    def test_bad_store_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)


class TestBandwidthServer:
    def test_single_transfer_takes_size_over_rate(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0)

        def body():
            yield pipe.transfer(250)

        sim.process(body())
        sim.run()
        assert sim.now == pytest.approx(2.5)

    def test_transfers_queue_fifo(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0)
        done = []

        def body(tag, nbytes):
            yield pipe.transfer(nbytes)
            done.append((tag, sim.now))

        sim.process(body("a", 100))
        sim.process(body("b", 100))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_lanes_split_rate_but_parallelize(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0, lanes=2)
        done = []

        def body(tag):
            yield pipe.transfer(100)
            done.append((tag, sim.now))

        sim.process(body("a"))
        sim.process(body("b"))
        sim.run()
        # Each lane runs at 50 B/s, both transfers proceed in parallel.
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_per_transfer_overhead_adds_latency(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0, per_transfer_overhead=0.25)

        def body():
            yield pipe.transfer(100)

        sim.process(body())
        sim.run()
        assert sim.now == pytest.approx(1.25)

    def test_background_traffic_delays_foreground(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0)
        finish = []

        def background():
            while sim.now < 10.0:
                yield pipe.transfer(100)

        def foreground():
            yield sim.timeout(0.5)
            yield pipe.transfer(10)
            finish.append(sim.now)

        sim.process(background())
        sim.process(foreground())
        sim.run(until=20.0)
        # Must wait for the in-flight background transfer (ends t=1.0).
        assert finish and finish[0] >= 1.0

    def test_bytes_served_accumulates(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=1000.0)

        def body():
            yield pipe.transfer(300)
            yield pipe.transfer(200)

        sim.process(body())
        sim.run()
        assert pipe.bytes_served == 500


class TestHeapQueueSemantics:
    """The heap-backed waiter queue must behave exactly like the seed's
    sorted list: grants by (priority, arrival), cancels drop out cleanly."""

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("request"), st.integers(min_value=-3, max_value=3)),
                st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
                st.tuples(st.just("release"), st.just(0)),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_grant_order_matches_reference_model(self, ops):
        """Drive Resource and a sorted-list reference with the same op
        sequence; every grant must go to the same logical request."""
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="model-check")
        granted: list[int] = []  # logical ids, in grant order

        requests: list = []  # (logical_id, Request), queued or granted
        model_queue: list[tuple[int, int]] = []  # (priority, logical_id), sorted
        model_granted: list[int] = []
        holder: list = []  # the Request currently holding the slot
        model_holder: list[int] = []
        next_id = 0

        def sync_grant():
            # A release hands the slot to the head of the model queue.
            if model_queue:
                _, lid = model_queue.pop(0)
                model_granted.append(lid)
                model_holder.append(lid)

        for op, arg in ops:
            if op == "request":
                req = resource.request(priority=arg)
                requests.append((next_id, req))
                if req.triggered:
                    granted.append(next_id)
                if not model_holder and not model_queue:
                    model_granted.append(next_id)
                    model_holder.append(next_id)
                else:
                    # Stable insert by priority, FIFO within equal.
                    index = len(model_queue)
                    while index > 0 and model_queue[index - 1][0] > arg:
                        index -= 1
                    model_queue.insert(index, (arg, next_id))
                next_id += 1
            elif op == "cancel":
                queued = [(lid, r) for lid, r in requests if not r.triggered]
                if not queued:
                    continue
                lid, req = queued[arg % len(queued)]
                resource.release(req)
                requests.remove((lid, req))
                model_queue.remove(next(e for e in model_queue if e[1] == lid))
            else:  # release the current holder
                if not model_holder:
                    continue
                lid = model_holder.pop()
                req = next(r for l, r in requests if l == lid)
                requests.remove((lid, req))
                before = {l for l, r in requests if r.triggered}
                resource.release(req)
                newly = [l for l, r in requests if r.triggered and l not in before]
                granted.extend(newly)
                sync_grant()

        assert granted == model_granted
        assert resource.queue_length == len(model_queue)

    def test_depth_sweep_is_subquadratic(self):
        """Queue-op cost must not scale linearly with depth (the seed's
        sorted list made the deep sweep ~16x slower per op; the heap's
        log factor stays under ~4x even on noisy CI boxes)."""

        def drive(depth: int) -> float:
            sim = Simulator()
            resource = Resource(sim, capacity=1, name="sweep")
            best = float("inf")
            for _ in range(3):
                held = resource.request()
                waiters = [resource.request(priority=-i) for i in range(depth)]
                started = time.perf_counter()
                resource.release(held)
                for waiter in waiters:
                    resource.release(waiter)
                best = min(best, time.perf_counter() - started)
                sim.run()  # drain triggered grant events between rounds
            return best / depth  # seconds per grant

        shallow = drive(1_000)
        deep = drive(16_000)
        assert deep < shallow * 4, (
            f"per-grant cost grew {deep / shallow:.1f}x from depth 1k to 16k; "
            "expected ~O(log n) scaling"
        )

"""Functional end-to-end tests: real corpus bytes through the full stack.

These tests run the complete system — client, middle tier, RoCE fabric,
replication, storage — in *functional* mode: payloads carry real bytes
from the Silesia-like corpus, compression really runs the pure-Python
LZ4 codec, and what lands on disk must decompress bit-for-bit back to
what the VM wrote.
"""

import pytest

from repro.compression import SilesiaLikeCorpus, lz4_decompress
from repro.core import SmartDsMiddleTier
from repro.middletier import AcceleratorMiddleTier, BlueField2MiddleTier, CpuOnlyMiddleTier, Testbed
from repro.sim import Simulator
from repro.workloads import ClientDriver, WriteRequestFactory

DESIGNS = [
    (CpuOnlyMiddleTier, {"n_workers": 4}),
    (AcceleratorMiddleTier, {"n_workers": 2}),
    (BlueField2MiddleTier, {"n_workers": 2}),
    (SmartDsMiddleTier, {"n_ports": 1}),
]


@pytest.fixture(scope="module")
def corpus_blocks():
    return SilesiaLikeCorpus(seed=99, file_size=8192).blocks(4096)[:24]


def run_functional(design_cls, kwargs, blocks):
    sim = Simulator()
    testbed = Testbed(sim)
    tier = design_cls(sim, testbed, **kwargs)
    factory = WriteRequestFactory(testbed.platform, blocks=blocks, seed=1)
    driver = ClientDriver(sim, tier, factory, concurrency=4, warmup_fraction=0.0)
    result = sim.run(until=driver.run(len(blocks)))
    return sim, testbed, tier, driver, factory, result


class TestWritePathCarriesRealBytes:
    @pytest.mark.parametrize("design_cls,kwargs", DESIGNS)
    def test_storage_holds_decompressible_replicas(self, design_cls, kwargs, corpus_blocks):
        sim, testbed, tier, driver, factory, result = run_functional(
            design_cls, kwargs, corpus_blocks
        )
        assert result.requests == len(corpus_blocks)
        # Find every block on storage and verify all three replicas.
        for block_id, original in enumerate(corpus_blocks):
            replicas_found = 0
            for server in testbed.storage_servers:
                record = server.store.latest(0, block_id)
                if record is None:
                    continue
                replicas_found += 1
                assert record.data is not None
                assert lz4_decompress(record.data) == original
            assert replicas_found == 3, f"block {block_id}: {replicas_found} replicas"

    @pytest.mark.parametrize("design_cls,kwargs", DESIGNS)
    def test_read_back_returns_original_bytes(self, design_cls, kwargs, corpus_blocks):
        sim, testbed, tier, driver, factory, result = run_functional(
            design_cls, kwargs, corpus_blocks
        )
        replies = []

        def reader():
            for lba in (0, 5, len(corpus_blocks) - 1):
                read = factory.make_read(lba)
                event = sim.event()
                driver._reply_events[read.request_id] = event
                yield driver.qp.send(read)
                replies.append((lba, (yield event)))

        sim.process(reader())
        sim.run()
        assert len(replies) == 3
        for lba, reply in replies:
            assert reply.header["status"] == "ok"
            assert reply.payload.data == corpus_blocks[lba]


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        """The whole stack is deterministic: same seed, same trajectory."""

        def run_once():
            sim = Simulator()
            testbed = Testbed(sim)
            tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4)
            factory = WriteRequestFactory(
                testbed.platform, seed=7, latency_sensitive_fraction=0.3
            )
            driver = ClientDriver(sim, tier, factory, concurrency=8)
            result = sim.run(until=driver.run(100))
            return (sim.now, result.latency.samples, result.payload_bytes)

        assert run_once() == run_once()

    def test_different_seeds_differ(self):
        def run_once(seed):
            sim = Simulator()
            testbed = Testbed(sim)
            tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4)
            # The seed steers which writes are latency-sensitive, which
            # changes the compression work and hence the timings.
            factory = WriteRequestFactory(
                testbed.platform, seed=seed, latency_sensitive_fraction=0.3
            )
            driver = ClientDriver(sim, tier, factory, concurrency=8)
            result = sim.run(until=driver.run(100))
            return result.latency.samples

        assert run_once(1) != run_once(2)


class TestLossyFabricEndToEnd:
    def test_writes_survive_a_lossy_fabric(self, corpus_blocks):
        """With 10% message loss everywhere, data still lands intact."""
        import dataclasses

        from repro.params import NetworkSpec, PlatformSpec

        platform = PlatformSpec(network=NetworkSpec(loss_rate=0.1))
        sim = Simulator()
        testbed = Testbed(sim, platform)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4)
        blocks = corpus_blocks[:8]
        factory = WriteRequestFactory(platform, blocks=blocks, seed=1)
        driver = ClientDriver(sim, tier, factory, concurrency=2, warmup_fraction=0.0)
        result = sim.run(until=driver.run(len(blocks)))
        assert result.requests == len(blocks)
        for block_id, original in enumerate(blocks):
            found = [
                server.store.latest(0, block_id)
                for server in testbed.storage_servers
                if server.store.latest(0, block_id) is not None
            ]
            assert len(found) == 3
            for record in found:
                assert lz4_decompress(record.data) == original

"""Unit tests for the host hardware models."""

import pytest

from repro.hostmodel import CpuComplex, DdioLlc, MemorySubsystem, PcieLink
from repro.params import HostSpec
from repro.sim import Simulator
from repro.units import gbps, mib, to_usec, usec


class TestMemorySubsystem:
    def test_read_takes_size_over_rate(self):
        sim = Simulator()
        memory = MemorySubsystem(sim, rate=1000.0, lanes=1, chunk=1 << 30)

        def body():
            yield memory.read(500)

        sim.process(body())
        sim.run()
        assert sim.now == pytest.approx(0.5)

    def test_meters_split_reads_and_writes(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)

        def body():
            yield memory.read(1000)
            yield memory.write(500)

        sim.process(body())
        sim.run()
        assert memory.read_meter.total_bytes == 1000
        assert memory.write_meter.total_bytes == 500

    def test_chunking_lets_small_transfer_overtake(self):
        sim = Simulator()
        # 2 lanes: the giant transfer occupies one lane chunk by chunk, the
        # small one proceeds on the other.
        memory = MemorySubsystem(sim, rate=1000.0, lanes=2, chunk=100)
        done = []

        def big():
            yield memory.read(10_000)
            done.append(("big", sim.now))

        def small():
            yield sim.timeout(0.001)
            yield memory.write(100)
            done.append(("small", sim.now))

        sim.process(big())
        sim.process(small())
        sim.run()
        assert done[0][0] == "small"

    def test_interference_slows_foreground(self):
        """Background load cuts foreground effective throughput (Fig. 4 shape)."""

        def run(with_background):
            sim = Simulator()
            memory = MemorySubsystem(sim, rate=1000.0, lanes=1, chunk=100)
            finished = []

            def foreground():
                for _ in range(10):
                    yield memory.read(100)
                finished.append(sim.now)

            def background():
                while True:
                    yield memory.write(100)

            sim.process(foreground())
            if with_background:
                sim.process(background())
            sim.run(until=1000.0)
            return finished[0]

        assert run(True) > 1.5 * run(False)


class TestDdioLlc:
    def test_capacity_is_two_elevenths_of_llc(self):
        llc = DdioLlc(HostSpec())
        assert llc.ddio_capacity == mib(16) * 2 // 11

    def test_small_working_set_skips_dram(self):
        llc = DdioLlc()
        traffic = llc.dma_write(4096, working_set=1 << 20)
        assert traffic.dram_read == 0 and traffic.dram_write == 0
        traffic = llc.dma_read(4096, working_set=1 << 20)
        assert traffic.dram_read == 0 and traffic.dram_write == 0

    def test_middle_tier_buffer_never_fits(self):
        """The ~400 MB intermediate buffer (§3.2) always spills to DRAM."""
        llc = DdioLlc()
        working_set = 400 * 1000**2
        assert llc.dma_write(4096, working_set).dram_write == 4096
        assert llc.dma_read(4096, working_set).dram_read == 4096

    def test_disabled_ddio_always_hits_dram(self):
        llc = DdioLlc(enabled=False)
        assert llc.dma_write(4096, working_set=1024).dram_write == 4096

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            DdioLlc().dma_write(-1, 0)
        with pytest.raises(ValueError):
            DdioLlc().dma_read(1, -1)


class TestPcieLink:
    def test_unloaded_write_latency_near_calibration(self):
        sim = Simulator()
        link = PcieLink(sim)
        t_done = []

        def body():
            yield link.dma_write(64)
            t_done.append(sim.now)

        sim.process(body())
        sim.run()
        # One upstream leg: ~0.7 us propagation + tiny serialization.
        assert usec(0.5) < t_done[0] < usec(1.0)

    def test_unloaded_read_latency_near_table1(self):
        sim = Simulator()
        link = PcieLink(sim)
        t_done = []

        def body():
            yield link.dma_read(64)
            t_done.append(sim.now)

        sim.process(body())
        sim.run()
        # Request leg + completion leg: ~1.4 us (Table 1, under-loaded).
        assert usec(1.2) < t_done[0] < usec(1.8)

    def test_loaded_latency_grows(self):
        """Table 1's shape: heavily loaded PCIe multiplies DMA latency."""

        def probe_latency(loaded):
            sim = Simulator()
            link = PcieLink(sim)
            latencies = []

            def background():
                while True:
                    yield link.dma_read(1 << 16)

            def probe():
                yield sim.timeout(usec(50))
                start = sim.now
                yield link.dma_read(4096)
                latencies.append(sim.now - start)

            if loaded:
                for _ in range(16):
                    sim.process(background())
            sim.process(probe())
            sim.run(until=usec(400))
            return latencies[0]

        assert probe_latency(True) > 2 * probe_latency(False)

    def test_meters_track_directions(self):
        sim = Simulator()
        link = PcieLink(sim)

        def body():
            yield link.dma_write(1000)
            yield link.dma_read(2000)

        sim.process(body())
        sim.run()
        assert link.d2h_meter.total_bytes >= 1000  # data + read request
        assert link.h2d_meter.total_bytes == 2000

    def test_read_chunks_serialize(self):
        sim = Simulator()
        spec = HostSpec(pcie_rate=1000.0, pcie_leg_latency=0.0, pcie_read_chunk=100)
        link = PcieLink(sim, spec)

        def body():
            yield link.dma_read(1000)

        sim.process(body())
        sim.run()
        # 64 B request + 10 chunks of 100 B at 1000 B/s.
        assert sim.now == pytest.approx((64 + 1000) / 1000.0)


class TestCpuComplex:
    def test_logical_core_count(self):
        assert CpuComplex().logical_cores == 48

    def test_single_thread_rate_is_2_1_gbps(self):
        cpu = CpuComplex()
        assert cpu.compression_profile(0, 1).rate == pytest.approx(gbps(2.1))

    def test_smt_pair_totals_2_7_gbps(self):
        cpu = CpuComplex()
        # 48 threads: every physical core holds two threads.
        total = cpu.aggregate_compression_rate(48)
        assert total == pytest.approx(24 * gbps(2.7))

    def test_up_to_24_threads_no_sharing(self):
        cpu = CpuComplex()
        assert cpu.aggregate_compression_rate(24) == pytest.approx(24 * gbps(2.1))

    def test_25th_thread_halves_one_core(self):
        cpu = CpuComplex()
        total = cpu.aggregate_compression_rate(25)
        assert total == pytest.approx(23 * gbps(2.1) + gbps(2.7))

    def test_aggregate_monotonic_in_threads(self):
        cpu = CpuComplex()
        rates = [cpu.aggregate_compression_rate(n) for n in range(1, 49)]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_invalid_thread_counts_rejected(self):
        cpu = CpuComplex()
        with pytest.raises(ValueError):
            cpu.compression_profile(0, 0)
        with pytest.raises(ValueError):
            cpu.compression_profile(0, 49)
        with pytest.raises(ValueError):
            cpu.compression_profile(5, 5)

"""Tests for repro.sim.debug: drain auditor, flow ledger, fault plans."""

import pytest

from repro.core import SmartDsApi, SmartDsDevice
from repro.core.engines import encrypt_op
from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim import (
    DrainAuditor,
    FaultPlan,
    FaultWindow,
    FlowLedger,
    InvariantViolation,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


def plain_endpoint(sim, name):
    platform = PlatformSpec()
    port = NetworkPort(sim, rate=platform.network.port_rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=platform.network)


# ---------------------------------------------------------------------------
# DrainAuditor
# ---------------------------------------------------------------------------


class TestDrainAuditor:
    def test_clean_run_is_ok(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        store = Store(sim)

        def worker():
            yield sim.process(resource.use(1.0))
            yield store.put("x")
            yield store.get()

        sim.process(worker())
        sim.run()
        report = DrainAuditor(sim).audit()
        assert report.ok
        assert str(report) == "<AuditReport clean>"
        DrainAuditor(sim).check()  # does not raise

    @pytest.mark.drain_audit_exempt
    def test_leaked_slot_is_reported(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2, name="engine-unit")

        def forgetful():
            yield resource.request()  # granted, never released

        sim.process(forgetful())
        sim.run()
        report = DrainAuditor(sim).audit()
        [finding] = report.by_kind("leaked-slot")
        assert finding.subject == "engine-unit"
        assert "1/2" in finding.detail

    @pytest.mark.drain_audit_exempt
    def test_stranded_getter_and_stuck_process(self):
        sim = Simulator()
        store = Store(sim, name="empty-queue")

        def starved():
            yield store.get()  # no put will ever come

        sim.process(starved(), name="consumer")
        sim.run()
        report = DrainAuditor(sim).audit()
        [getter] = report.by_kind("stranded-getter")
        assert getter.subject == "empty-queue"
        assert "consumer" in getter.detail
        [stuck] = report.by_kind("stuck-process")
        assert stuck.subject == "consumer"
        assert "get:empty-queue" in stuck.detail  # names the parked-on event

    def test_daemon_loops_are_expected_to_be_parked(self):
        """Forever service loops marked daemon produce no findings."""
        sim = Simulator()
        store = Store(sim, name="service-queue")

        def service():
            while True:
                yield store.get()

        sim.process(service(), name="recv-loop", daemon=True)
        sim.run()
        assert DrainAuditor(sim).audit().ok

    @pytest.mark.drain_audit_exempt
    def test_stranded_putter_on_bounded_store(self):
        sim = Simulator()
        store = Store(sim, capacity=1, name="tiny")

        def producer():
            yield store.put("fits")
            yield store.put("never-fits")

        sim.process(producer(), name="producer")
        sim.run()
        report = DrainAuditor(sim).audit()
        [putter] = report.by_kind("stranded-putter")
        assert putter.subject == "tiny"
        assert "never-fits" in putter.detail
        assert "producer" in putter.detail

    @pytest.mark.drain_audit_exempt
    def test_abandoned_event_is_distinguished_from_parked_process(self):
        sim = Simulator()
        store = Store(sim, name="orphan")
        store.get()  # event created and dropped; nobody ever waits on it
        sim.run()
        report = DrainAuditor(sim).audit()
        [getter] = report.by_kind("stranded-getter")
        assert "no process attached" in getter.detail

    def test_not_drained_audit_is_flagged_partial(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        sim.process(sleeper())
        sim.run(until=1.0)  # stop early: queue still holds the wakeup
        report = DrainAuditor(sim).audit()
        assert report.by_kind("not-drained")

    @pytest.mark.drain_audit_exempt
    def test_check_raises_with_every_finding_listed(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="leaky")
        store = Store(sim, name="starving")

        def bad():
            yield resource.request()
            yield store.get()

        sim.process(bad(), name="bad-actor")
        sim.run()
        with pytest.raises(InvariantViolation) as excinfo:
            DrainAuditor(sim).check()
        text = str(excinfo.value)
        assert "leaked-slot" in text
        assert "stranded-getter" in text
        assert "stuck-process" in text


# ---------------------------------------------------------------------------
# FlowLedger
# ---------------------------------------------------------------------------


class TestFlowLedger:
    def test_record_and_total(self):
        ledger = FlowLedger()
        ledger.record("a", "f1", 100)
        ledger.record("a", "f1", 50)
        ledger.record("b", "f1", 150)
        ledger.record("a", "f2", 7)
        assert ledger.total("f1", "a") == 150
        assert ledger.total("f1", "a", "b") == 300
        assert ledger.total("f2", "b") == 0  # never seen there
        assert set(ledger.flows()) == {"f1", "f2"}
        assert ledger.points("f1") == {"a": 150, "b": 150}

    def test_negative_bytes_rejected(self):
        with pytest.raises(SimulationError):
            FlowLedger().record("a", "f", -1)

    def test_assert_balanced(self):
        ledger = FlowLedger()
        ledger.record("in", "f", 100)
        ledger.record("out", "f", 300)
        ledger.assert_balanced("f", ["in"], ["out"], scale=3.0)  # fan-out of 3
        with pytest.raises(InvariantViolation, match="flow 'f'"):
            ledger.assert_balanced("f", ["in"], ["out"])

    def test_transient_assertion_leaves_no_expectation_behind(self):
        ledger = FlowLedger()
        ledger.record("in", "f", 1)
        with pytest.raises(InvariantViolation):
            ledger.assert_balanced("f", ["in"], ["out"])
        assert ledger.imbalances() == []

    @pytest.mark.drain_audit_exempt  # the deliberate imbalance would fail conftest
    def test_drain_auditor_reports_declared_imbalance(self):
        sim = Simulator()
        ledger = FlowLedger(sim, name="conservation")
        ledger.record("in", "f", 100)
        ledger.expect_balanced("f", ["in"], ["out"])  # out never recorded
        sim.run()
        report = DrainAuditor(sim).audit()
        [finding] = report.by_kind("flow-imbalance")
        assert finding.subject == "conservation"
        assert "100" in finding.detail

    def test_bytes_conserved_across_wire_and_split(self):
        """One tagged write: wire tx == wire rx, HBM holds the payload."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm = plain_endpoint(sim, "vm")
        qp = vm.connect(device.instance(0).endpoint)
        ledger = FlowLedger(sim).attach(
            vm.port, device.instance(0).port, device.pcie, device.hbm
        )
        h_buf = api.host_alloc(64)
        d_buf = api.dev_alloc(4608)
        api.dev_mixed_recv(qp.peer, h_buf, 64, d_buf, 4608)
        message = Message(
            "write_request", "vm", "t",
            payload=Payload.synthetic(4096, 2.0),
            header={"block_id": 1},
            flow="req-1",
        )

        def sender():
            yield qp.send(message)

        sim.process(sender())
        sim.run()
        # Store-and-forward: every wire byte serialized at tx lands at rx.
        wire = message.size + vm.spec.roce_overhead_bytes
        assert ledger.total("req-1", "vm.port.tx") == wire
        ledger.assert_balanced("req-1", ["vm.port.tx"], ["smartds.port0.rx"])
        # The Split module put exactly the payload bytes into HBM.
        assert ledger.total("req-1", "smartds.hbm.write") == 4096
        DrainAuditor(sim).check()

    def test_lossy_fabric_accounts_dropped_attempts_exactly(self):
        """Lost attempts land in ``<tx>.dropped``: tx == rx + tx.dropped.

        Regression: retransmitted attempts were booked at the tx point
        only (rx sees just the delivered frame), so a plain ``tx == rx``
        conservation check spuriously failed whenever loss was active.
        """
        from repro.params import NetworkSpec
        from repro.units import gbps, usec

        sim = Simulator()
        spec = NetworkSpec(loss_rate=0.4, retransmit_timeout=usec(20))
        left = RoceEndpoint(
            sim, NetworkPort(sim, gbps(100), "a.port"), "a", spec=spec, loss_seed=7
        )
        right = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "b.port"), "b", spec=spec)
        qp = left.connect(right)
        ledger = FlowLedger(sim).attach(left.port, right.port)

        def sender():
            sends = [
                qp.send(Message("d", "a", "b", payload=Payload.synthetic(512, 1.0), flow="f"))
                for _ in range(20)
            ]
            yield sim.all_of(sends)

        def receiver():
            for _ in range(20):
                yield qp.peer.recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert left.retransmissions.value > 0  # loss actually happened
        assert ledger.total("f", "a.port.tx.dropped") > 0
        ledger.assert_balanced("f", ["a.port.tx"], ["b.port.rx", "a.port.tx.dropped"])
        DrainAuditor(sim).check()

    def test_replica_fanout_reads_payload_once_per_replica(self):
        """Assemble reads the HBM payload exactly ``replicas`` times."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm = plain_endpoint(sim, "vm")
        sink = plain_endpoint(sim, "sink")
        qp = vm.connect(device.instance(0).endpoint)
        out_qp = device.instance(0).endpoint.connect(sink)
        ledger = FlowLedger(sim).attach(device.hbm)
        h_buf = api.host_alloc(64)
        d_buf = api.dev_alloc(4608)
        event = api.dev_mixed_recv(qp.peer, h_buf, 64, d_buf, 4608)
        incoming = Message(
            "write_request", "vm", "t",
            payload=Payload.synthetic(4096, 2.0),
            header={"chunk_id": 0, "block_id": 9},
            flow="blk-9",
        )

        def tier():
            yield qp.send(incoming)
            yield from api.poll(event)
            for _ in range(3):  # 3-replica fan-out of the stored payload
                yield out_qp.send(
                    Message(
                        "storage_write", "t", "sink",
                        payload=event.message.payload,
                        header={"chunk_id": 0, "block_id": 9},
                        flow="blk-9",
                    )
                )

        sim.process(tier())
        sim.run()
        ledger.assert_balanced(
            "blk-9", ["smartds.hbm.write"], ["smartds.hbm.read"], scale=3.0
        )
        DrainAuditor(sim).check()

    def test_engine_conserves_bytes_for_size_preserving_op(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine
        ledger = FlowLedger(sim).attach(device.hbm)
        src = device.allocator.alloc(4096)
        dst = device.allocator.alloc(4096)
        src.payload = Payload.from_bytes(b"\xAB" * 4096)

        def body():
            yield engine.run(src, 4096, dst, operation=encrypt_op, flow="seal")

        sim.process(body())
        sim.run()
        ledger.assert_balanced("seal", ["smartds.hbm.read"], ["smartds.hbm.write"])
        DrainAuditor(sim).check()


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_replays_identically(self):
        def sequence(seed):
            plan = FaultPlan(seed=seed).add_loss_burst(0.0, 10.0, probability=0.5)
            return [plan.frame_lost(0.01 * i) for i in range(200)]

        first = sequence(42)
        assert first == sequence(42)  # replayable from the seed alone
        assert first != sequence(43)  # and the seed actually matters
        assert any(first) and not all(first)  # probabilistic, not constant

    def test_loss_outside_burst_never_drops(self):
        plan = FaultPlan().add_loss_burst(5.0, 1.0)
        assert not plan.frame_lost(4.999)
        assert plan.frame_lost(5.0)
        assert plan.frame_lost(5.999)
        assert not plan.frame_lost(6.0)  # window is half-open

    def test_stall_windows_chain(self):
        plan = FaultPlan().add_pcie_stall(1.0, 1.0).add_pcie_stall(2.0, 1.0)
        # Landing mid-first-window waits out both consecutive windows.
        assert plan.stall_delay(1.5, "h2d") == pytest.approx(1.5)
        assert plan.stall_delay(2.5, "d2h") == pytest.approx(0.5)
        assert plan.stall_delay(3.0, "h2d") == 0.0

    def test_directional_stalls_are_independent(self):
        plan = FaultPlan().add_pcie_stall(0.0, 1.0, direction="d2h")
        assert plan.stall_delay(0.5, "d2h") == pytest.approx(0.5)
        assert plan.stall_delay(0.5, "h2d") == 0.0

    def test_slowdown_factor_applies_inside_window_only(self):
        plan = FaultPlan().add_engine_slowdown(1.0, 1.0, factor=4.0)
        assert plan.slowdown(0.5) == 1.0
        assert plan.slowdown(1.5) == 4.0
        assert plan.slowdown(2.5) == 1.0

    def test_schedule_validation(self):
        plan = FaultPlan()
        with pytest.raises(SimulationError):
            plan.add_loss_burst(0.0, 1.0, probability=0.0)
        with pytest.raises(SimulationError):
            plan.add_loss_burst(0.0, 1.0, probability=1.5)
        with pytest.raises(SimulationError):
            plan.add_loss_burst(0.0, 0.0)  # empty window
        with pytest.raises(SimulationError):
            plan.add_pcie_stall(0.0, 1.0, direction="sideways")
        with pytest.raises(SimulationError):
            plan.add_engine_slowdown(0.0, 1.0, factor=0.5)
        with pytest.raises(SimulationError):
            FaultWindow(2.0, 1.0)

    def test_describe_is_a_replay_recipe(self):
        plan = (
            FaultPlan(seed=7)
            .add_loss_burst(0.0, 1.0, probability=0.25)
            .add_pcie_stall(2.0, 1.0, direction="h2d")
            .add_engine_slowdown(4.0, 1.0, factor=2.0)
        )
        text = plan.describe()
        assert "seed=7" in text
        assert "loss" in text and "p=0.25" in text
        assert "stall h2d" in text
        assert "x2" in text

    def test_pcie_stall_delays_dma(self):
        stall = 1e-3

        def write_time(plan):
            sim = Simulator()
            device = SmartDsDevice(sim, fault_plan=plan)

            def body():
                yield device.pcie.dma_write(4096)

            sim.process(body())
            sim.run()
            return sim.now

        baseline = write_time(None)
        stalled = write_time(FaultPlan().add_pcie_stall(0.0, stall, direction="d2h"))
        assert baseline < stall
        assert stalled == pytest.approx(baseline + stall)

    def test_engine_slowdown_stretches_occupancy(self):
        def run_time(plan):
            sim = Simulator()
            device = SmartDsDevice(sim, fault_plan=plan)
            src = device.allocator.alloc(4096)
            dst = device.allocator.alloc(8192)
            src.payload = Payload.synthetic(4096, 2.0)

            def body():
                yield device.instance(0).engine.run(src, 4096, dst)

            sim.process(body())
            sim.run()
            return sim.now

        baseline = run_time(None)
        slowed = run_time(FaultPlan().add_engine_slowdown(0.0, 1.0, factor=8.0))
        assert slowed > baseline

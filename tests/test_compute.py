"""Tests for the compute side: storage agents, VMs, virtual disks."""

import pytest

from repro.compute import StorageAgent, VirtualMachine
from repro.compute.vm import BlockIoError
from repro.core import SmartDsMiddleTier
from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.sim import Simulator


def build_stack(sim, tier_cls=CpuOnlyMiddleTier, n_tiers=1, **tier_kwargs):
    agent = StorageAgent(sim)
    tiers = []
    for index in range(n_tiers):
        testbed = Testbed(sim)
        kwargs = dict(tier_kwargs) or {"n_workers": 4}
        tier = tier_cls(sim, testbed, address=f"tier{index}", **kwargs)
        agent.attach_tier(tier)
        tiers.append((tier, testbed))
    return agent, tiers


class TestVirtualDisk:
    def test_write_then_read_roundtrip(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=4)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=64)
        data = bytes(range(256)) * 16  # exactly 4096 bytes
        results = {}

        def guest():
            yield disk.write(3, data)
            results["read"] = yield disk.read(3)

        sim.process(guest())
        sim.run()
        assert results["read"] == data
        assert disk.writes.value == 1 and disk.reads.value == 1
        assert disk.write_latency.count == 1 and disk.read_latency.count == 1

    def test_write_on_smartds_tier(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, tier_cls=SmartDsMiddleTier, n_ports=1)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=16)
        data = b"smartds block 00" * 256
        results = {}

        def guest():
            yield disk.write(0, data)
            results["read"] = yield disk.read(0)

        sim.process(guest())
        sim.run()
        assert results["read"] == data

    def test_overwrite_returns_latest(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=4)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=8)
        first = b"a" * 4096
        second = b"b" * 4096
        results = {}

        def guest():
            yield disk.write(1, first)
            yield disk.write(1, second)
            results["read"] = yield disk.read(1)

        sim.process(guest())
        sim.run()
        assert results["read"] == second

    def test_read_of_never_written_block_fails(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=2)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=8)
        failures = []

        def guest():
            try:
                yield disk.read(5)
            except BlockIoError as exc:
                failures.append(str(exc))

        sim.process(guest())
        sim.run()
        assert failures

    def test_validation(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=2)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=4)
        with pytest.raises(ValueError):
            disk.write(9, b"x" * 4096)  # LBA out of range
        with pytest.raises(ValueError):
            disk.write(0, b"short")  # not a full block
        with pytest.raises(ValueError):
            vm.create_disk(capacity_blocks=0)

    def test_synthetic_write_mode(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=2)
        vm = VirtualMachine(sim, agent, "vm0")
        disk = vm.create_disk(capacity_blocks=4)

        def guest():
            yield disk.write_synthetic(2, ratio=2.0)

        sim.process(guest())
        sim.run()
        assert disk.writes.value == 1


class TestStorageAgentRouting:
    def test_segments_shard_across_tiers(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_tiers=2, n_workers=2)
        mapper = agent.mapper
        blocks_per_segment = mapper.blocks_per_chunk * mapper.chunks_per_segment
        tier_a, _ = agent.tier_for(0)
        tier_b, _ = agent.tier_for(blocks_per_segment)  # next segment
        assert tier_a is not tier_b

    def test_cross_segment_writes_land_on_their_tier(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_tiers=2, n_workers=2)
        vm = VirtualMachine(sim, agent, "vm0")
        mapper = agent.mapper
        blocks_per_segment = mapper.blocks_per_chunk * mapper.chunks_per_segment
        disk = vm.create_disk(capacity_blocks=blocks_per_segment + 8)
        data = b"z" * 4096

        def guest():
            yield disk.write(0, data)  # segment 0 -> tier0
            yield disk.write(blocks_per_segment, data)  # segment 1 -> tier1

        sim.process(guest())
        sim.run()
        assert tiers[0][0].requests_completed.value == 1
        assert tiers[1][0].requests_completed.value == 1
        assert agent.requests_routed.value == 2

    def test_agent_without_tiers_rejects(self):
        sim = Simulator()
        agent = StorageAgent(sim)
        with pytest.raises(RuntimeError):
            agent.tier_for(0)


class TestSegmentAllocation:
    def test_disks_get_disjoint_segment_ranges(self):
        from repro.compute import SegmentAllocator

        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=2)
        vm_a = VirtualMachine(sim, agent, "vmA")
        vm_b = VirtualMachine(sim, agent, "vmB")
        disk_a = vm_a.create_disk(capacity_blocks=64)
        disk_b = vm_b.create_disk(capacity_blocks=64)
        assert disk_a.base_lba != disk_b.base_lba

    def test_two_vms_same_guest_lba_dont_collide(self):
        sim = Simulator()
        agent, tiers = build_stack(sim, n_workers=4)
        vm_a = VirtualMachine(sim, agent, "vmA")
        vm_b = VirtualMachine(sim, agent, "vmB")
        disk_a = vm_a.create_disk(capacity_blocks=8)
        disk_b = vm_b.create_disk(capacity_blocks=8)
        data_a = b"A" * 4096
        data_b = b"B" * 4096
        results = {}

        def guests():
            yield disk_a.write(0, data_a)
            yield disk_b.write(0, data_b)
            results["a"] = yield disk_a.read(0)
            results["b"] = yield disk_b.read(0)

        sim.process(guests())
        sim.run()
        assert results["a"] == data_a
        assert results["b"] == data_b

    def test_shared_allocator_across_agents(self):
        from repro.compute import SegmentAllocator
        from repro.params import DEFAULT_PLATFORM

        allocator = SegmentAllocator(DEFAULT_PLATFORM)
        sim = Simulator()
        agent_a = StorageAgent(sim, address="c0", allocator=allocator)
        agent_b = StorageAgent(sim, address="c1", allocator=allocator)
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        agent_a.attach_tier(tier)
        agent_b.attach_tier(tier)
        disk_a = VirtualMachine(sim, agent_a, "vmA").create_disk(8)
        disk_b = VirtualMachine(sim, agent_b, "vmB").create_disk(8)
        assert disk_a.base_lba != disk_b.base_lba

    def test_allocation_is_segment_aligned(self):
        from repro.compute import SegmentAllocator
        from repro.params import DEFAULT_PLATFORM

        allocator = SegmentAllocator(DEFAULT_PLATFORM)
        per_segment = allocator._blocks_per_segment
        first = allocator.allocate(1)
        second = allocator.allocate(per_segment + 1)  # spans 2 segments
        third = allocator.allocate(1)
        assert first == 0
        assert second == per_segment
        assert third == 3 * per_segment

    def test_invalid_capacity(self):
        from repro.compute import SegmentAllocator

        with pytest.raises(ValueError):
            SegmentAllocator().allocate(0)

"""Tests for the device-memory hot-block read cache (``repro.cache``).

Unit level: the TinyLFU admission sketch, segmented-LRU structure,
write-through invalidation epochs, pin/release lifetimes, elastic
shedding, and the fill/evict/held byte-conservation ledger contract.

Integration level: the SmartDS read path serving hits from HBM, the
read-your-writes guarantee under seeded chaos (honours
``REPRO_FAULT_SEED`` like the rest of the failure-recovery suite), and
the ``ext_cache`` experiment's acceptance thresholds in quick mode.
"""

import os
import random

import pytest

from repro.cache import FrequencySketch, HotBlockCache
from repro.compression import SilesiaLikeCorpus
from repro.core import SmartDsMiddleTier
from repro.core.device import DeviceMemoryAllocator
from repro.middletier import Testbed
from repro.net.message import Payload
from repro.params import CacheSpec
from repro.sim import FlowLedger, Simulator
from repro.units import kib
from repro.workloads import ClientDriver, WriteRequestFactory

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "11"))


class TestFrequencySketch:
    def test_estimate_grows_with_touches(self):
        sketch = FrequencySketch()
        assert sketch.estimate((0, 1)) == 0
        for _ in range(5):
            sketch.touch((0, 1))
        assert sketch.estimate((0, 1)) == 5

    def test_counters_saturate(self):
        sketch = FrequencySketch()
        for _ in range(100):
            sketch.touch((0, 1))
        assert sketch.estimate((0, 1)) <= 15

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(sample=8)
        for _ in range(7):
            sketch.touch((0, 7))
        before = sketch.estimate((0, 7))
        sketch.touch((0, 7))  # the 8th touch trips the aging pass
        assert sketch.estimate((0, 7)) <= before // 2 + 1

    def test_distinct_keys_mostly_independent(self):
        sketch = FrequencySketch()
        for _ in range(10):
            sketch.touch((3, 1))
        # min-over-rows bounds collision inflation: an untouched key may
        # alias one row but almost never all of them.
        assert sketch.estimate((3, 2)) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencySketch(width=0)
        with pytest.raises(ValueError):
            FrequencySketch(depth=0)
        with pytest.raises(ValueError):
            FrequencySketch(sample=0)


def _payload(size=1024):
    return Payload.synthetic(size, 1.0)


def _cache(capacity=kib(64), limit=None, **spec_kwargs):
    sim = Simulator()
    allocator = DeviceMemoryAllocator(capacity, sim=sim)
    spec = CacheSpec(enabled=True, capacity_bytes=limit or capacity, **spec_kwargs)
    cache = HotBlockCache(sim, allocator, spec, name="t.cache")
    return sim, allocator, cache


def _fill(cache, key, size=1024):
    """Admit one block the way the read path does: fill token then offer."""
    token = cache.begin_fill(key)
    return cache.offer(key, _payload(size), token)


class TestHotBlockCache:
    def test_miss_then_fill_then_hit(self):
        _sim, allocator, cache = _cache()
        assert cache.lookup((0, 1)) is None
        assert cache.misses.value == 1
        assert _fill(cache, (0, 1))
        entry = cache.lookup((0, 1))
        assert entry is not None and entry.payload.size == 1024
        cache.release(entry)
        assert cache.hits.value == 1
        assert cache.hit_ratio() == pytest.approx(0.5)
        assert allocator.allocated == 1024

    def test_second_hit_promotes_to_protected(self):
        _sim, _allocator, cache = _cache()
        _fill(cache, (0, 1))
        assert (0, 1) in cache._probation
        cache.release(cache.lookup((0, 1)))
        assert (0, 1) in cache._protected
        assert (0, 1) not in cache._probation

    def test_protected_budget_demotes_lru_back_to_probation(self):
        # 8 KiB budget, 50% protected: two 2 KiB blocks fill protected,
        # promoting a third demotes the least recently used of them.
        _sim, _allocator, cache = _cache(capacity=kib(8), protected_fraction=0.5)
        for block in (1, 2, 3):
            _fill(cache, (0, block), size=2048)
            cache.release(cache.lookup((0, block)))  # promote each
        assert (0, 1) in cache._probation  # demoted to make room
        assert (0, 3) in cache._protected
        assert cache._protected_bytes <= cache.protected_budget

    def test_eviction_is_lru_within_probation(self):
        _sim, _allocator, cache = _cache(limit=4096)
        for block in (1, 2, 3, 4):
            _fill(cache, (0, block))
        # Make block 5 clearly hotter than the probation LRU (block 1).
        for _ in range(3):
            cache.sketch.touch((0, 5))
        assert _fill(cache, (0, 5))
        assert not cache.contains((0, 1))
        assert cache.contains((0, 2))
        assert cache.evictions.value == 1

    def test_tinylfu_rejects_one_hit_wonders(self):
        _sim, _allocator, cache = _cache(limit=2048)
        _fill(cache, (0, 1))
        _fill(cache, (0, 2))
        cache.release(cache.lookup((0, 1)))  # block 1 is warm
        # A cold candidate may not displace it: sketch says 0 <= 2.
        assert not _fill(cache, (0, 3))
        assert cache.rejections.value == 1
        assert cache.contains((0, 1))

    def test_oversized_and_empty_payloads_refused(self):
        _sim, _allocator, cache = _cache(limit=2048)
        token = cache.begin_fill((0, 1))
        assert not cache.offer((0, 1), _payload(4096), token)
        assert not cache.offer((0, 1), Payload.synthetic(0, 1.0), token)
        assert cache.admissions.value == 0

    def test_duplicate_offer_refused(self):
        _sim, allocator, cache = _cache()
        assert _fill(cache, (0, 1))
        assert not _fill(cache, (0, 1))
        assert allocator.allocated == 1024

    def test_invalidate_drops_resident_entry(self):
        _sim, allocator, cache = _cache()
        _fill(cache, (0, 1))
        cache.invalidate((0, 1))
        assert not cache.contains((0, 1))
        assert cache.invalidations.value == 1
        assert allocator.allocated == 0

    def test_stale_fill_refused_after_racing_write(self):
        """A fill begun before a write may not install pre-write bytes."""
        _sim, _allocator, cache = _cache()
        token = cache.begin_fill((0, 1))
        cache.invalidate((0, 1))  # the write lands mid-fetch
        assert not cache.offer((0, 1), _payload(), token)
        assert cache.fills_raced.value == 1
        # A fill begun after the write is fine again.
        assert _fill(cache, (0, 1))

    def test_invalidating_pinned_entry_defers_the_free(self):
        _sim, allocator, cache = _cache()
        _fill(cache, (0, 1))
        entry = cache.lookup((0, 1))  # a reader is decompressing from it
        cache.invalidate((0, 1))
        assert entry.dead
        assert allocator.allocated == 1024  # buffer alive under the pin
        cache.release(entry)
        assert allocator.allocated == 0
        with pytest.raises(ValueError):
            cache.release(entry)  # double release is a bug

    def test_shed_frees_cold_entries_and_reports_bytes(self):
        _sim, allocator, cache = _cache()
        for block in (1, 2, 3):
            _fill(cache, (0, block))
        freed = cache._shed(2000)
        assert freed == 2048  # two whole entries
        assert cache.sheds.value == 2
        assert allocator.allocated == 1024
        assert not cache.contains((0, 1)) and not cache.contains((0, 2))

    def test_shed_skips_pinned_entries(self):
        _sim, _allocator, cache = _cache()
        _fill(cache, (0, 1))
        _fill(cache, (0, 2))
        pinned = cache.lookup((0, 1))
        # Shedding must not yank the buffer a reader is using; only the
        # unpinned entry's bytes count as freed.
        assert cache._shed(4096) == 1024
        assert cache.contains((0, 1))
        cache.release(pinned)

    def test_request_path_reclaim_sheds_the_cache(self):
        """The cache is the lowest-priority consumer: a gated request
        allocation above the watermark shrinks it rather than failing."""
        sim = Simulator()
        allocator = DeviceMemoryAllocator(
            10_000, sim=sim, high_watermark=0.9, low_watermark=0.5
        )
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=5_000), name="t.cache"
        )
        for block in range(4):
            _fill(cache, (0, block), size=1000)
        assert allocator.allocated == 4000
        got = allocator.try_alloc(6000)  # would cross the admission limit
        assert got is not None
        assert cache.sheds.value > 0
        assert allocator.bytes_reclaimed.value >= 1000
        allocator.free(got)

    def test_no_admission_into_the_watermark_band(self):
        """Elastic fills stop below the drain target: filling inside the
        band would hold occupancy up against parked headroom waiters."""
        sim = Simulator()
        allocator = DeviceMemoryAllocator(
            10_000, sim=sim, high_watermark=0.9, low_watermark=0.5
        )
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=10_000), name="t.cache"
        )
        hog = allocator.alloc(4_800)
        assert not _fill(cache, (0, 1), size=1000)  # 5_800 > drain target
        assert cache.pressure_refusals.value == 1
        allocator.free(hog)
        assert _fill(cache, (0, 1), size=1000)

    def test_occupancy_gauges_track_held_bytes(self):
        _sim, _allocator, cache = _cache()
        _fill(cache, (0, 1))
        _fill(cache, (0, 2), size=2048)
        assert cache.occupancy.value == 3072
        assert cache.entries.value == 2
        cache.invalidate((0, 1))
        assert cache.occupancy.value == 2048
        stats = cache.stats()
        assert stats["held_bytes"] == 2048
        assert stats["peak_bytes"] == 3072


class TestCacheLedger:
    def test_fill_balances_against_evict_plus_held(self):
        """The drain-audit contract: every filled byte is either still
        held or was evicted — checked through the level probe."""
        sim = Simulator()
        allocator = DeviceMemoryAllocator(kib(64), sim=sim)
        ledger = FlowLedger(sim, name="cache-ledger")
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=4096), name="t.cache"
        ).attach_ledger(ledger)
        for block in range(6):  # forces evictions past the 4 KiB budget
            for _ in range(block + 1):  # later blocks out-rank earlier ones
                cache.sketch.touch((0, block))
            _fill(cache, (0, block))
        cache.invalidate((0, 5))
        assert cache.admissions.value > 0
        assert cache.evictions.value + cache.invalidations.value > 0
        assert ledger.imbalances() == []
        sim.run()  # the conftest drain audit re-checks the same ledger

    def test_imbalance_is_detected(self):
        allocator = DeviceMemoryAllocator(kib(64))
        sim = Simulator()
        ledger = FlowLedger(name="off-the-books")  # not sim-tracked on purpose
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=4096), name="t.cache"
        ).attach_ledger(ledger)
        _fill(cache, (0, 1))
        cache._held -= 100  # corrupt the stock the probe reports
        assert ledger.imbalances() != []


def _write_then_read(sim, tier, testbed, factory, n_writes=8, lbas=(0,)):
    driver = ClientDriver(sim, tier, factory, concurrency=4, warmup_fraction=0.0)
    sim.run(until=driver.run(n_writes))
    result = sim.run(until=driver.run_reads(list(lbas), concurrency=1))
    return driver, result


class TestSmartDsCachedReads:
    def _testbed(self, cache_on=True):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        spec = CacheSpec(enabled=cache_on, capacity_bytes=kib(256))
        tier = SmartDsMiddleTier(sim, testbed, n_ports=1, cache_spec=spec)
        return sim, testbed, tier

    def test_repeated_read_hits_and_skips_the_backend(self):
        sim, testbed, tier = self._testbed()
        factory = WriteRequestFactory(testbed.platform, seed=2)
        driver, _ = _write_then_read(sim, tier, testbed, factory)
        backend_before = sum(s.reads_served.value for s in testbed.storage_servers)
        result = sim.run(until=driver.run_reads([0, 0, 0], concurrency=1))
        backend_after = sum(s.reads_served.value for s in testbed.storage_servers)
        assert result.requests == 3
        assert result.payload_bytes == 3 * testbed.platform.workload.block_size
        assert tier.cache.hits.value >= 3
        assert backend_after == backend_before  # served from HBM, zero fetches
        sim.run()

    def test_hits_are_faster_than_misses(self):
        sim, testbed, tier = self._testbed()
        factory = WriteRequestFactory(testbed.platform, seed=2)
        driver, _ = _write_then_read(sim, tier, testbed, factory, lbas=(0, 1, 0, 1, 0, 1))
        sim.run()
        hit = tier.cache_hit_latency.maybe_summary()
        miss = tier.cache_miss_latency.maybe_summary()
        assert hit is not None and miss is not None
        assert hit["avg"] < miss["avg"]

    def test_cached_read_under_memory_pressure_degrades_not_fails(self):
        """A hit whose decompress buffer cannot be allocated falls back
        to host-path decompression but still answers correctly."""
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = SmartDsMiddleTier(
            sim,
            testbed,
            n_ports=1,
            recv_window=8,
            hbm_capacity=kib(96),
            cache_spec=CacheSpec(enabled=True, capacity_fraction=0.5),
        )
        factory = WriteRequestFactory(testbed.platform, seed=3)
        driver = ClientDriver(sim, tier, factory, concurrency=4, warmup_fraction=0.0)
        sim.run(until=driver.run(16))
        result = sim.run(until=driver.run_reads([0, 1, 2, 3] * 8, concurrency=4))
        assert result.requests == 32
        assert result.failures == ()
        sim.run()


class TestReadYourWrites:
    def _read_payload(self, sim, driver, lba=0):
        """One read through the driver's QP, returning the raw reply."""
        message = driver.factory.make_read(lba)
        reply_event = sim.event()
        driver._reply_events[message.request_id] = reply_event

        def one_read():
            yield driver.qp.send(message)
            reply = yield reply_event
            return reply

        return sim.run(until=sim.process(one_read()))

    def test_read_after_write_ack_never_sees_stale_bytes(self):
        """Warm the cache with version A of LBA 0, overwrite with B
        under seeded server chaos, read again: the reply must carry B.
        Deterministic given REPRO_FAULT_SEED."""
        rng = random.Random(FAULT_SEED)
        corpus = SilesiaLikeCorpus(seed=FAULT_SEED, file_size=kib(16))
        version_a, version_b = corpus.blocks(4096)[:2]
        assert version_a != version_b

        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = SmartDsMiddleTier(
            sim,
            testbed,
            n_ports=1,
            cache_spec=CacheSpec(enabled=True, capacity_bytes=kib(256)),
        )
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, blocks=[version_a], seed=FAULT_SEED),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(8))
        reply = self._read_payload(sim, driver, lba=0)  # warms the cache
        assert reply.payload.data == version_a
        assert tier.cache.contains((0, 0))

        def chaos():
            yield sim.timeout(rng.uniform(1e-5, 1e-4))
            victim = rng.choice(testbed.storage_servers)
            victim.fail()
            yield sim.timeout(rng.uniform(1e-3, 2e-3))
            victim.recover()

        sim.process(chaos())
        # A fresh factory restarts LBA assignment at 0: these 8 writes
        # overwrite the same LBAs with version B, racing the chaos.
        driver.factory = WriteRequestFactory(
            testbed.platform, blocks=[version_b], seed=FAULT_SEED
        )
        sim.run(until=driver.run(8))
        reply = self._read_payload(sim, driver, lba=0)
        assert reply.header["status"] == "ok"
        assert reply.payload.data == version_b  # never version_a
        sim.run()

    def test_fill_racing_a_write_is_refused_end_to_end(self):
        """A read that misses and fetches while a write to the same LBA
        is replicating must not install the pre-write payload."""
        corpus = SilesiaLikeCorpus(seed=7, file_size=kib(16))
        version_a, version_b = corpus.blocks(4096)[:2]
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = SmartDsMiddleTier(
            sim,
            testbed,
            n_ports=1,
            cache_spec=CacheSpec(enabled=True, capacity_bytes=kib(256)),
        )
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, blocks=[version_a], seed=7),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(8))
        tier.cache.invalidate((0, 0))  # make sure the next read misses

        read = TestReadYourWrites._read_payload
        # Launch the read (it will fetch from storage) and, mid-fetch,
        # the overwrite; the write's invalidation must poison the fill.
        message = driver.factory.make_read(0)
        reply_event = sim.event()
        driver._reply_events[message.request_id] = reply_event

        def racing_read():
            yield driver.qp.send(message)
            yield reply_event

        read_proc = sim.process(racing_read())
        driver.factory = WriteRequestFactory(testbed.platform, blocks=[version_b], seed=7)
        sim.run(until=driver.run(8))
        sim.run(until=read_proc)
        reply = read(self, sim, driver, lba=0)
        assert reply.payload.data == version_b
        assert not tier.cache.contains((0, 0)) or (
            tier.cache.lookup((0, 0)).payload.data != version_a
        )
        sim.run()


class TestExtCacheAcceptance:
    def test_quick_run_meets_the_acceptance_bars(self):
        from repro.experiments.ext_cache import run

        result = run(quick=True)
        hot = next(c for c in result.data["skew_cells"] if c["skew"] == 0.99)
        assert hot["on"]["hit_ratio"] >= 0.5
        assert hot["on"]["mean_us"] < hot["off"]["mean_us"]
        assert hot["on"]["backend_read_bytes"] < hot["off"]["backend_read_bytes"]
        ratios = [c["hit_ratio"] for c in result.data["size_cells"]]
        assert ratios == sorted(ratios)  # monotone in the byte budget
        for cell in result.data["pressure_cells"]:
            assert cell["on"]["degraded"] <= cell["off"]["degraded"], cell

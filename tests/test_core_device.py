"""Unit tests for the SmartDS device, engines, and FPGA resource model."""

import pytest

from repro.core import DeviceBuffer, SmartDsDevice, design_resources
from repro.core.resources import (
    ACC_RESOURCES,
    VCU128_TOTALS,
    FpgaResources,
    fits_on_vcu128,
    utilization,
)
from repro.net.message import Payload
from repro.sim import Simulator
from repro.units import gbps, to_gbps


class TestDeviceConstruction:
    def test_port_count_bounds(self):
        sim = Simulator()
        assert SmartDsDevice(sim, n_ports=6).n_ports == 6
        with pytest.raises(ValueError):
            SmartDsDevice(sim, n_ports=0)
        with pytest.raises(ValueError):
            SmartDsDevice(sim, n_ports=7)

    def test_one_instance_and_engine_per_port(self):
        sim = Simulator()
        device = SmartDsDevice(sim, n_ports=4)
        assert len(device.instances) == 4
        engines = {id(inst.engine) for inst in device.instances}
        assert len(engines) == 4

    def test_instance_lookup(self):
        sim = Simulator()
        device = SmartDsDevice(sim, n_ports=2)
        assert device.instance(1) is device.instances[1]
        with pytest.raises(ValueError):
            device.instance(2)

    def test_hbm_rate_matches_spec(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        assert to_gbps(device.hbm.rate) == pytest.approx(3400)


class TestAllocator:
    def test_alloc_free_cycle(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        buf = device.allocator.alloc(4096)
        assert device.allocator.allocated == 4096
        device.allocator.free(buf)
        assert device.allocator.allocated == 0
        assert device.allocator.peak == 4096

    def test_capacity_enforced(self):
        sim = Simulator()
        device = SmartDsDevice(sim, hbm_capacity=8192)
        device.allocator.alloc(8192)
        with pytest.raises(MemoryError):
            device.allocator.alloc(1)

    def test_bad_sizes_rejected(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        with pytest.raises(ValueError):
            device.allocator.alloc(0)


class TestHardwareEngine:
    def test_compresses_payload_into_dest(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine
        src = DeviceBuffer(size=4096, payload=Payload.synthetic(4096, 2.0))
        dest = DeviceBuffer(size=4096)
        results = []

        def body():
            result = yield engine.run(src, 4096, dest)
            results.append(result)

        sim.process(body())
        sim.run()
        assert results[0].is_compressed
        assert results[0].size == 2048
        assert dest.payload is results[0]
        assert engine.blocks_processed.value == 1
        assert engine.bytes_in.value == 4096
        assert engine.bytes_out.value == 2048

    def test_engine_throughput_is_100gbps(self):
        """N back-to-back 4 KB blocks should take ~N * 0.33 us of engine time."""
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine
        n_blocks = 256

        def body():
            jobs = []
            for _ in range(n_blocks):
                src = DeviceBuffer(size=4096, payload=Payload.synthetic(4096, 2.0))
                dest = DeviceBuffer(size=4096)
                jobs.append(engine.run(src, 4096, dest))
            yield sim.all_of(jobs)

        sim.process(body())
        sim.run()
        achieved = n_blocks * 4096 / sim.now
        # Pipelined blocks approach the engine's 100 Gb/s input rate
        # (minus HBM/PCIe/first-block setup effects).
        assert achieved > 0.5 * gbps(100)

    def test_empty_source_rejected(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine

        def body():
            yield engine.run(DeviceBuffer(size=4096), 4096, DeviceBuffer(size=4096))

        sim.process(body())
        with pytest.raises(ValueError):
            sim.run()

    def test_oversized_result_rejected(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        engine = device.instance(0).engine
        src = DeviceBuffer(size=4096, payload=Payload.synthetic(4096, 2.0))
        tiny = DeviceBuffer(size=16)

        def body():
            yield engine.run(src, 4096, tiny)

        sim.process(body())
        with pytest.raises(ValueError):
            sim.run()


class TestFpgaResources:
    def test_table3_published_rows(self):
        assert design_resources("acc") == FpgaResources(112, 109, 172)
        assert design_resources("smartds", 1) == FpgaResources(157, 143, 292)
        assert design_resources("smartds", 2) == FpgaResources(313, 285, 584)
        assert design_resources("smartds", 4) == FpgaResources(627, 571, 1168)
        assert design_resources("smartds", 6) == FpgaResources(941, 857, 1752)

    def test_interpolated_port_counts(self):
        three = design_resources("smartds", 3)
        assert 313 < three.luts_k < 627
        assert 584 < three.brams < 1168

    def test_linear_in_ports(self):
        one = design_resources("smartds", 1)
        six = design_resources("smartds", 6)
        assert six.luts_k / one.luts_k == pytest.approx(6.0, rel=0.01)
        assert six.brams / one.brams == pytest.approx(6.0, rel=0.01)

    def test_utilization_matches_table3_percentages(self):
        util = utilization(design_resources("smartds", 1))
        assert util["luts"] == pytest.approx(0.12, abs=0.01)
        assert util["regs"] == pytest.approx(0.054, abs=0.01)
        assert util["brams"] == pytest.approx(0.145, abs=0.01)

    def test_everything_fits_on_vcu128(self):
        for ports in [1, 2, 4, 6]:
            assert fits_on_vcu128(design_resources("smartds", ports))
        assert fits_on_vcu128(ACC_RESOURCES)
        assert not fits_on_vcu128(
            FpgaResources(VCU128_TOTALS.luts_k + 1, 0, 0)
        )

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            design_resources("gpu")
        with pytest.raises(ValueError):
            design_resources("smartds", 7)

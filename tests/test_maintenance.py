"""Tests for the maintenance services (§2.2.3)."""

import pytest

from repro.middletier import (
    CpuOnlyMiddleTier,
    HeartbeatMonitor,
    LsmCompactionService,
    SnapshotService,
    Testbed,
)
from repro.sim import Simulator
from repro.units import msec, usec
from repro.workloads import ClientDriver, WriteRequestFactory


def build(sim, n_storage=4, n_workers=4):
    testbed = Testbed(sim, n_storage_servers=n_storage)
    tier = CpuOnlyMiddleTier(sim, testbed, n_workers=n_workers)
    factory = WriteRequestFactory(testbed.platform, seed=11)
    driver = ClientDriver(sim, tier, factory, concurrency=8)
    return testbed, tier, factory, driver


class TestLsmCompaction:
    def test_compaction_triggers_after_threshold(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        service = LsmCompactionService(sim, tier, threshold=16, scan_interval=usec(200))
        done = driver.run(64)  # all in chunk 0 (sequential LBAs)
        sim.run(until=done)
        sim.run(until=sim.now + msec(5))
        service.stop()
        assert service.compactions.value >= 1
        assert service.blocks_in.value >= 16
        # Sequential LBAs are all distinct: compaction keeps every block.
        assert service.blocks_out.value == service.blocks_in.value

    def test_compaction_deduplicates_overwrites(self):
        """Rewriting the same LBAs should compact many versions into one."""
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        service = LsmCompactionService(sim, tier, threshold=20, scan_interval=usec(200))

        # Issue 20 writes to only 5 distinct blocks.
        def writer():
            tier.start()
            for i in range(20):
                message = factory.make()
                message.header["block_id"] = i % 5
                message.header["chunk_id"] = 0
                event = sim.event()
                driver._reply_events[message.request_id] = event
                yield driver.qp.send(message)
                yield event

        sim.process(writer())
        sim.run(until=msec(20))
        service.stop()
        assert service.compactions.value == 1
        assert service.blocks_in.value == 20
        assert service.blocks_out.value == 5

    def test_gc_reclaims_superseded_space(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        service = LsmCompactionService(sim, tier, threshold=16, scan_interval=usec(200))
        done = driver.run(32)
        sim.run(until=done)
        sim.run(until=sim.now + msec(5))
        service.stop()
        assert service.bytes_reclaimed.value > 0
        # Live bytes on storage equal one live version per written block.
        total_live_blocks = sum(
            len(s.store.live_blocks(c))
            for s in testbed.storage_servers
            for c in s.store.chunk_ids()
        )
        assert total_live_blocks == 32 * 3  # 3 replicas each

    def test_bad_threshold_rejected(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        with pytest.raises(ValueError):
            LsmCompactionService(sim, tier, threshold=1)


class TestSnapshots:
    def test_snapshots_taken_periodically(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        service = SnapshotService(sim, tier, interval=msec(1))
        done = driver.run(16)
        sim.run(until=done)
        sim.run(until=sim.now + msec(5))
        service.stop()
        assert service.snapshots_taken.value >= 4
        for server in testbed.storage_servers:
            assert service.snapshot_ids.get(server.address)

    def test_snapshot_survives_compaction_gc(self):
        """A snapshot taken before compaction still sees the old blocks."""
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        done = driver.run(16)
        sim.run(until=done)
        server = testbed.storage_servers[0]
        snap = server.store.snapshot()
        before = len(server.store.snapshot_blocks(snap))
        compaction = LsmCompactionService(sim, tier, threshold=2, scan_interval=usec(100))
        sim.run(until=sim.now + msec(10))
        compaction.stop()
        assert len(server.store.snapshot_blocks(snap)) == before


class TestHeartbeatFailover:
    def test_detects_failure_and_re_replicates(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim, n_storage=5)
        tier.retain_writes = True
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        done = driver.run(24)
        sim.run(until=done)

        victim = tier._chunk_log[0][0].replicas[0][0]
        testbed.server(victim).fail()
        sim.run(until=sim.now + msec(20))
        monitor.stop()

        assert victim in monitor.suspected
        assert monitor.failures_detected.value == 1
        assert monitor.blocks_re_replicated.value > 0
        # Every retained write names three healthy holders again.
        for entries in tier._chunk_log.values():
            for entry in entries:
                holders = [address for address, _ in entry.replicas]
                assert victim not in holders
                assert len(holders) == 3

    def test_healthy_cluster_no_false_positives(self):
        sim = Simulator()
        testbed, tier, factory, driver = build(sim)
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        done = driver.run(16)
        sim.run(until=done)
        sim.run(until=sim.now + msec(10))
        monitor.stop()
        assert monitor.failures_detected.value == 0
        assert not monitor.suspected

"""Fast unit tests of the experiments layer (no heavy sweeps)."""

import pytest

from repro.experiments import table3_resources
from repro.experiments.common import ExperimentResult, build_tier, measure_design
from repro.experiments.runner import EXPERIMENTS, main
from repro.experiments.sec55_multi_nic import ScaleUpPoint, estimate
from repro.hostmodel.memory import MemorySubsystem
from repro.middletier import Testbed
from repro.params import DEFAULT_PLATFORM
from repro.sim import Simulator


class TestBuildTier:
    @pytest.mark.parametrize(
        "design", ["CPU-only", "Acc", "Acc w/o DDIO", "BF2", "FPGA-only", "SmartDS-1", "SmartDS-3"]
    )
    def test_every_design_constructs(self, design):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=6)
        memory = MemorySubsystem.for_host(sim)
        tier = build_tier(sim, testbed, design, n_workers=2, memory=memory)
        assert tier.design_name in design or design.startswith("SmartDS")

    def test_unknown_design_rejected(self):
        sim = Simulator()
        testbed = Testbed(sim)
        with pytest.raises(ValueError):
            build_tier(sim, testbed, "GPU-only", 2, MemorySubsystem.for_host(sim))


class TestMeasureDesign:
    def test_small_measurement_has_all_fields(self):
        m = measure_design("CPU-only", n_workers=2, n_requests=64, concurrency=8)
        assert m.throughput_gbps > 0
        assert m.avg_latency_us > 0
        assert m.p99_latency_us >= m.avg_latency_us * 0.5
        assert m.p999_latency_us >= m.p99_latency_us
        assert "nic-h2d" in m.pcie_gbps

    def test_smartds_port_count_parsed_from_name(self):
        m = measure_design("SmartDS-2", n_workers=0, n_requests=128, concurrency=16)
        assert m.throughput_gbps > 0

    def test_mlc_threads_report_bandwidth(self):
        m = measure_design(
            "CPU-only", n_workers=2, n_requests=64, concurrency=8, mlc_threads=4
        )
        assert m.mlc_gbps > 0


class TestExperimentResult:
    def test_render_includes_id_and_text(self):
        result = ExperimentResult("figX", "A title", "the body", {})
        rendered = result.render()
        assert "figX" in rendered and "A title" in rendered and "the body" in rendered


class TestScaleUpEstimator:
    def test_unconstrained_scaling_is_linear(self):
        points = estimate(
            per_card_gbps=100.0,
            per_card_memory_gbps=1.0,
            per_card_pcie_gbps=1.0,
            cpu_only_peak_gbps=50.0,
            platform=DEFAULT_PLATFORM,
        )
        assert [round(p.throughput_gbps) for p in points] == [100 * c for c in range(1, 9)]
        assert points[-1].speedup_vs_cpu_only == pytest.approx(16.0)

    def test_memory_capacity_caps_scaling(self):
        # Per-card memory demand of 500 Gb/s: two cards hit the ~960 Gb/s
        # host ceiling.
        points = estimate(
            per_card_gbps=100.0,
            per_card_memory_gbps=500.0,
            per_card_pcie_gbps=1.0,
            cpu_only_peak_gbps=50.0,
            platform=DEFAULT_PLATFORM,
        )
        assert points[3].throughput_gbps < 4 * 100.0

    def test_pcie_switch_caps_scaling(self):
        points = estimate(
            per_card_gbps=100.0,
            per_card_memory_gbps=0.0,
            per_card_pcie_gbps=60.0,  # two cards overrun one root port
            cpu_only_peak_gbps=50.0,
            platform=DEFAULT_PLATFORM,
        )
        assert points[1].throughput_gbps < 2 * 100.0

    def test_core_limit_optional(self):
        kwargs = dict(
            per_card_gbps=100.0,
            per_card_memory_gbps=0.0,
            per_card_pcie_gbps=0.0,
            cpu_only_peak_gbps=50.0,
            platform=DEFAULT_PLATFORM,
        )
        free = estimate(**kwargs)
        limited = estimate(**kwargs, apply_core_limit=True)
        assert limited[-1].throughput_gbps < free[-1].throughput_gbps
        assert isinstance(free[0], ScaleUpPoint)


class TestRunnerCli:
    def test_registry_covers_every_artifact(self):
        assert {
            "table1",
            "table3",
            "fig4",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "sec55",
            "ablations",
            "ext_cluster",
        } <= set(EXPERIMENTS)

    def test_cli_runs_the_analytic_experiment(self, capsys):
        assert main(["table3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "SmartDS-6" in out and "941" in out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestTable3Exactness:
    def test_rows_match_paper(self):
        result = table3_resources.run()
        assert result.data["SmartDS-4"]["brams"] == 1168
        assert result.data["Acc"]["luts_k"] == 112


class TestRunnerCharts:
    def test_chart_flag_renders_series(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3", "--quick", "--chart"]) == 0  # no series: no crash
        out = capsys.readouterr().out
        assert "SmartDS-6" in out

    def test_render_charts_handles_series_and_peaks(self):
        from repro.experiments.common import ExperimentResult
        from repro.experiments.runner import render_charts
        from repro.telemetry.reporting import Series

        result = ExperimentResult(
            "x",
            "title",
            "",
            {
                "a": Series("a", (1.0, 2.0), (3.0, 4.0)),
                "b": Series("b", (1.0, 2.0), (5.0, 6.0)),
                "peaks_gbps": {"CPU-only": 60.0, "SmartDS-1": 66.0},
            },
        )
        text = render_charts(result)
        assert "a" in text and "peak throughput" in text

    def test_render_charts_empty_data(self):
        from repro.experiments.common import ExperimentResult
        from repro.experiments.runner import render_charts

        assert render_charts(ExperimentResult("x", "t", "", {})) == ""


class TestJsonExport:
    def test_jsonable_handles_all_shapes(self):
        import json

        from repro.experiments.common import Measurement
        from repro.experiments.export import jsonable
        from repro.telemetry.reporting import Series

        data = {
            "series": Series("s", (1.0, 2.0), (3.0, 4.0)),
            "measurement": Measurement(
                design="x",
                n_workers=2,
                throughput_gbps=1.0,
                avg_latency_us=2.0,
                p99_latency_us=3.0,
                p999_latency_us=4.0,
                memory_read_gbps=0.0,
                memory_write_gbps=0.0,
                pcie_gbps={"nic": 1.0},
            ),
            "nested": {"tuple": (1, 2), "set": {3}},
            "inf": float("inf"),
            "plain": [1, "two", None, True],
        }
        converted = jsonable(data)
        text = json.dumps(converted)  # must not raise
        assert '"label": "s"' in text
        assert converted["inf"] is None
        assert converted["measurement"]["design"] == "x"

    def test_cli_json_flag_writes_file(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "results.json"
        assert main(["table3", "--quick", "--json", str(out)]) == 0
        import json

        document = json.loads(out.read_text())
        assert "table3" in document
        assert document["table3"]["data"]["SmartDS-6"]["brams"] == 1752

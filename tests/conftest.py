"""Shared pytest harness: every test runs under the simulation drain auditor.

After each test, every :class:`~repro.sim.kernel.Simulator` created by
the test whose event queue fully drained is audited with
:class:`~repro.sim.debug.DrainAuditor`: leaked resource slots, stranded
store getters/putters, stuck non-daemon processes, and declared
byte-conservation imbalances fail the test.

Implemented as runtest hooks (not an autouse fixture) so hypothesis
tests do not trip the function-scoped-fixture health check.

Opt-outs:

- ``@pytest.mark.drain_audit_exempt`` for tests that intentionally leave
  the simulation in a stuck state;
- ``REPRO_DRAIN_AUDIT=0`` in the environment disables the audit wholesale.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import kernel
from repro.sim.debug import DrainAuditor

_AUDIT_ENABLED = os.environ.get("REPRO_DRAIN_AUDIT", "1") != "0"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "drain_audit_exempt: skip the post-test simulation drain audit "
        "(for tests that intentionally strand processes or leak slots)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not _AUDIT_ENABLED or item.get_closest_marker("drain_audit_exempt") is not None:
        yield
        return
    before = set(kernel.live_simulators())
    outcome = yield
    if outcome.excinfo is not None:
        return  # the test already failed; report that, not the audit
    problems = []
    for sim in kernel.live_simulators():
        if sim in before:
            continue  # created by an earlier test or fixture
        if sim._queue:
            continue  # never drained (deadline run / unfinished): audit is not meaningful
        report = DrainAuditor(sim).audit()
        if not report.ok:
            problems.append(f"{sim!r}:\n{report}")
    if problems:
        # force_exception (not a bare raise) keeps pluggy's hookwrapper
        # teardown protocol happy while still failing the call phase.
        outcome.force_exception(
            pytest.fail.Exception(
                "simulation drain audit failed (mark with "
                "@pytest.mark.drain_audit_exempt if the stuck state is "
                "intentional):\n" + "\n".join(problems),
                pytrace=False,
            )
        )

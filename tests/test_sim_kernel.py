"""Unit tests for the discrete-event simulation kernel."""

import sys

import pytest

from repro.sim import AllOf, AnyOf, SimulationError, Simulator
from repro.sim.process import Interrupt


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def body():
        yield sim.timeout(1.5)
        seen.append(sim.now)
        yield sim.timeout(0.5)
        seen.append(sim.now)

    sim.process(body())
    sim.run()
    assert seen == [1.5, 2.0]


def test_events_at_same_time_run_fifo():
    sim = Simulator()
    order = []

    def body(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(body(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    result = sim.run(until=sim.process(parent()))
    assert result == 43


def test_run_until_deadline_stops_early():
    sim = Simulator()
    ticks = []

    def clock():
        while True:
            yield sim.timeout(1.0)
            ticks.append(sim.now)

    sim.process(clock())
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_event_returns_its_value():
    sim = Simulator()
    done = sim.event()

    def body():
        yield sim.timeout(2.0)
        done.succeed("finished")

    sim.process(body())
    assert sim.run(until=done) == "finished"
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_inside_process():
    sim = Simulator()
    boom = sim.event()
    caught = []

    def body():
        try:
            yield boom
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(body())
    boom.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_in_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("model bug")

    sim.process(body())
    with pytest.raises(RuntimeError, match="model bug"):
        sim.run()


def test_concurrent_unhandled_exceptions_all_surface():
    """Several processes failing in one step must not lose any failure.

    Regression: ``step()`` used to pop only ``_unhandled[0]`` and leave
    the rest in the list — a second process's crash in the same step was
    silently discarded. Now the first exception is raised with the
    siblings attached (as ``__notes__`` and ``concurrent_failures``).
    """
    sim = Simulator()
    trigger = sim.timeout(1.0)

    def fail_with(exc):
        yield trigger
        raise exc

    first = RuntimeError("first failure")
    second = ValueError("second failure")
    sim.process(fail_with(first))
    sim.process(fail_with(second))
    with pytest.raises(RuntimeError, match="first failure") as excinfo:
        sim.run()
    raised = excinfo.value
    assert raised is first
    assert raised.concurrent_failures == (second,)
    if sys.version_info >= (3, 11):  # __notes__ is PEP 678 (3.11+)
        assert any("second failure" in note for note in raised.__notes__)
    # Nothing left behind to contaminate a later step.
    assert sim._unhandled == []


def test_single_unhandled_exception_has_no_sibling_note():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("alone")

    sim.process(body())
    with pytest.raises(RuntimeError, match="alone") as excinfo:
        sim.run()
    assert not hasattr(excinfo.value, "concurrent_failures")
    assert not getattr(excinfo.value, "__notes__", [])


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def body():
        yield 3

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    t_done = []

    def body():
        yield AllOf(sim, [sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
        t_done.append(sim.now)

    sim.process(body())
    sim.run()
    assert t_done == [3.0]


def test_any_of_fires_on_first_event():
    sim = Simulator()
    t_done = []

    def body():
        yield AnyOf(sim, [sim.timeout(5.0), sim.timeout(1.0)])
        t_done.append(sim.now)

    sim.process(body())
    sim.run()
    assert t_done == [1.0]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    results = []

    def body():
        done = sim.timeout(1.0, value="early")
        yield sim.timeout(5.0)
        value = yield done  # already fired at t=1
        results.append((sim.now, value))

    sim.process(body())
    sim.run()
    assert results == [(5.0, "early")]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0

"""Tests for the sharded cluster: directory, routing, conservation.

Covers the ``docs/scaling.md`` subsystem end to end — consistent-hash
placement determinism and minimal disruption, versioned route maps with
overrides, the stale-map retry protocol (``wrong_shard`` replies),
1-shard equivalence with the undirected tier, per-shard FlowLedger
byte conservation under directory churn, and the partitioned-storage
blast-radius property.
"""

import dataclasses
import random

import pytest

from repro.cluster import RouteMap, SegmentDirectory, ShardedCluster, stable_hash
from repro.middletier import AddressMapper, CpuOnlyMiddleTier, Testbed
from repro.params import ClusterSpec, PlatformSpec
from repro.sim import Simulator
from repro.sim.debug import FlowLedger
from repro.storage.server import StorageServer
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanCollector
from repro.units import usec
from repro.workloads import ClientDriver, RoutingClient, WriteRequestFactory


def cluster_platform(n_shards, **overrides):
    return dataclasses.replace(
        PlatformSpec(), cluster=ClusterSpec(n_shards=n_shards, **overrides)
    )


def build_cluster(sim, n_shards, **kwargs):
    spec_kw = kwargs.pop("cluster_kw", {})
    platform = cluster_platform(n_shards, **spec_kw)
    return ShardedCluster(sim, platform, design="CPU-only", n_workers=2, **kwargs)


# ---------------------------------------------------------------------------
# SegmentDirectory
# ---------------------------------------------------------------------------


class TestSegmentDirectory:
    def test_stable_hash_is_process_independent(self):
        # blake2b, not salted hash(): fixed expectations hold across runs.
        assert stable_hash("segment:0") == stable_hash("segment:0")
        assert stable_hash("segment:0") != stable_hash("segment:1")

    def test_placement_is_deterministic_across_instances(self):
        shards = ["shard0", "shard1", "shard2"]
        a = SegmentDirectory(shards).route_map()
        b = SegmentDirectory(shards).route_map()
        segments = range(500)
        assert a.placement(segments) == b.placement(segments)

    def test_single_shard_owns_everything(self):
        directory = SegmentDirectory(["only"])
        assert all(directory.owner_of(s) == "only" for s in range(100))

    def test_vnodes_smooth_the_spread(self):
        directory = SegmentDirectory([f"shard{i}" for i in range(4)], vnodes_per_shard=128)
        route = directory.route_map()
        counts = {shard: 0 for shard in route.shards}
        n_segments = 4096
        for segment in range(n_segments):
            counts[route.owner_of(segment)] += 1
        mean = n_segments / 4
        # 128 vnodes/shard: relative arc-share error ~1/sqrt(128) ~ 9%.
        assert all(0.6 * mean < count < 1.4 * mean for count in counts.values())

    def test_remove_shard_moves_only_its_segments(self):
        # The minimal-disruption property, over seeded segment sets.
        rng = random.Random(17)
        shards = [f"shard{i}" for i in range(5)]
        directory = SegmentDirectory(shards)
        segments = sorted(rng.sample(range(100_000), 800))
        before = directory.route_map().placement(segments)
        directory.remove_shard("shard2")
        after = directory.route_map().placement(segments)
        for segment in segments:
            if before[segment] == "shard2":
                assert after[segment] != "shard2"
            else:
                assert after[segment] == before[segment]

    def test_add_shard_only_pulls_segments_to_the_newcomer(self):
        directory = SegmentDirectory(["shard0", "shard1", "shard2"])
        segments = range(2000)
        before = directory.route_map().placement(segments)
        directory.add_shard("shard3")
        after = directory.route_map().placement(segments)
        moved = {s for s in segments if after[s] != before[s]}
        assert moved  # the newcomer takes a share...
        assert all(after[s] == "shard3" for s in moved)  # ...and nothing else moves

    def test_every_mutation_bumps_the_version(self):
        directory = SegmentDirectory(["a", "b"])
        versions = [directory.version]
        directory.add_shard("c")
        versions.append(directory.version)
        directory.pin_segment(7, "a")
        versions.append(directory.version)
        directory.unpin_segment(7)
        versions.append(directory.version)
        directory.remove_shard("c")
        versions.append(directory.version)
        assert versions == sorted(set(versions))  # strictly increasing

    def test_route_map_snapshot_is_frozen_at_its_version(self):
        directory = SegmentDirectory(["a", "b"])
        stale = directory.route_map()
        directory.pin_segment(3, "b")
        assert stale.version < directory.version
        assert directory.owner_of(3) == "b"
        fresh = directory.route_map()
        assert fresh.overrides == {3: "b"}

    def test_overrides_beat_the_ring_and_vanish_with_their_shard(self):
        directory = SegmentDirectory(["a", "b", "c"])
        ring_owner = directory.owner_of(11)
        target = next(s for s in ("a", "b", "c") if s != ring_owner)
        directory.pin_segment(11, target)
        assert directory.owner_of(11) == target
        directory.remove_shard(target)
        assert directory.owner_of(11) != target  # pin dropped with the shard

    def test_noop_pin_does_not_churn_versions(self):
        directory = SegmentDirectory(["a", "b"])
        directory.pin_segment(5, "a")
        version = directory.version
        directory.pin_segment(5, "a")
        assert directory.version == version

    def test_rebalance_pins_round_robin(self):
        directory = SegmentDirectory(["a", "b", "c"])
        directory.rebalance(range(6))
        owners = [directory.owner_of(s) for s in range(6)]
        assert owners == ["a", "b", "c", "a", "b", "c"]

    def test_heat_and_imbalance(self):
        directory = SegmentDirectory(["a", "b"])
        directory.rebalance(range(2))  # segment 0 -> a, 1 -> b
        directory.record_heat(0, 3000)
        directory.record_heat(1, 1000)
        heat = directory.shard_heat()
        assert heat == {"a": 3000.0, "b": 1000.0}
        assert directory.imbalance() == pytest.approx(1.5)
        # Idle directory reads as balanced, and every member appears.
        idle = SegmentDirectory(["a", "b", "c"])
        assert idle.shard_heat() == {"a": 0.0, "b": 0.0, "c": 0.0}
        assert idle.imbalance() == 1.0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SegmentDirectory([])
        with pytest.raises(ValueError):
            SegmentDirectory(["a", "a"])
        with pytest.raises(ValueError):
            SegmentDirectory(["a"], vnodes_per_shard=0)
        directory = SegmentDirectory(["a", "b"])
        with pytest.raises(ValueError):
            directory.add_shard("a")
        with pytest.raises(ValueError):
            directory.remove_shard("zz")
        with pytest.raises(ValueError):
            directory.pin_segment(1, "zz")
        with pytest.raises(ValueError):
            directory.pin_segment(-1, "a")
        with pytest.raises(ValueError):
            directory.unpin_segment(9)
        with pytest.raises(ValueError):
            directory.owner_of(-1)
        with pytest.raises(ValueError):
            directory.record_heat(0, -1)
        directory.remove_shard("b")
        with pytest.raises(ValueError):
            directory.remove_shard("a")  # never below one shard

    def test_route_map_repr_and_placement(self):
        route = SegmentDirectory(["a", "b"]).route_map()
        assert isinstance(route, RouteMap)
        assert set(route.placement([1, 2, 3]).values()) <= {"a", "b"}


# ---------------------------------------------------------------------------
# ClusterSpec
# ---------------------------------------------------------------------------


class TestClusterSpec:
    def test_defaults_bypass_the_directory(self):
        spec = ClusterSpec()
        assert spec.n_shards == 1 and spec.directory_bypassed

    def test_force_directory_disables_the_bypass(self):
        assert not ClusterSpec(force_directory=True).directory_bypassed
        assert not ClusterSpec(n_shards=2).directory_bypassed

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_shards=0)
        with pytest.raises(ValueError):
            ClusterSpec(vnodes_per_shard=0)
        with pytest.raises(ValueError):
            ClusterSpec(map_fetch_latency=-1.0)
        with pytest.raises(ValueError):
            ClusterSpec(max_route_retries=0)


# ---------------------------------------------------------------------------
# AddressMapper segment arithmetic (routing unit)
# ---------------------------------------------------------------------------


class TestSegmentArithmetic:
    def test_segment_of_boundary_lbas(self):
        mapper = AddressMapper()
        per_segment = mapper.blocks_per_segment
        assert mapper.segment_of(0) == 0
        assert mapper.segment_of(per_segment - 1) == 0
        assert mapper.segment_of(per_segment) == 1
        assert mapper.segment_of(3 * per_segment - 1) == 2
        with pytest.raises(ValueError):
            mapper.segment_of(-1)

    def test_segment_of_matches_resolve(self):
        mapper = AddressMapper()
        for lba in (0, 1, mapper.blocks_per_segment, 5 * mapper.blocks_per_segment + 7):
            assert mapper.segment_of(lba) == mapper.resolve(lba).segment_id

    def test_segments_of_range(self):
        mapper = AddressMapper()
        per_segment = mapper.blocks_per_segment
        assert list(mapper.segments_of_range(0, 1)) == [0]
        assert list(mapper.segments_of_range(per_segment - 1, 1)) == [0]
        assert list(mapper.segments_of_range(per_segment - 1, 2)) == [0, 1]
        assert list(mapper.segments_of_range(0, 2 * per_segment + 1)) == [0, 1, 2]
        assert list(mapper.segments_of_range(7, 0)) == []
        with pytest.raises(ValueError):
            mapper.segments_of_range(0, -1)
        with pytest.raises(ValueError):
            mapper.segments_of_range(-1, 1)

    def test_blocks_per_segment_matches_paper(self):
        mapper = AddressMapper()
        assert mapper.blocks_per_segment == 32 * 1024**3 // 4096


# ---------------------------------------------------------------------------
# Testbed indexing (satellite: O(1) lookup, duplicate detection)
# ---------------------------------------------------------------------------


class TestTestbedIndex:
    def test_server_lookup_is_indexed(self):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        assert testbed.server("storage3") is testbed.storage_servers[3]
        with pytest.raises(KeyError):
            testbed.server("nope")

    def test_duplicate_addresses_rejected(self):
        sim = Simulator()
        platform = PlatformSpec()
        servers = [
            StorageServer(sim, "dup", network_spec=platform.network),
            StorageServer(sim, "dup", network_spec=platform.network),
            StorageServer(sim, "other", network_spec=platform.network),
        ]
        with pytest.raises(ValueError, match="duplicate storage server address"):
            Testbed(sim, platform, servers=servers)

    def test_explicit_servers_and_count_must_agree(self):
        sim = Simulator()
        platform = PlatformSpec()
        servers = [
            StorageServer(sim, f"s{i}", network_spec=platform.network) for i in range(3)
        ]
        with pytest.raises(ValueError, match="disagrees"):
            Testbed(sim, platform, n_storage_servers=4, servers=servers)
        testbed = Testbed(sim, platform, servers=servers)
        assert testbed.server("s1") is servers[1]


# ---------------------------------------------------------------------------
# End-to-end routing
# ---------------------------------------------------------------------------


def run_plain_driver(seed, n_requests=64, concurrency=8):
    sim = Simulator()
    testbed = Testbed(sim, PlatformSpec(), n_storage_servers=3)
    tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2, address="shard0")
    driver = ClientDriver(
        sim, tier, WriteRequestFactory(PlatformSpec(), seed=seed), concurrency=concurrency
    )
    return sim.run(until=driver.run(n_requests))


def run_routed(seed, force, n_requests=64, concurrency=8):
    sim = Simulator()
    cluster = build_cluster(
        sim, 1, n_storage_servers=3, cluster_kw={"force_directory": force}
    )
    client = RoutingClient(
        sim,
        cluster,
        WriteRequestFactory(cluster.platform, seed=seed),
        concurrency=concurrency,
    )
    return sim.run(until=client.run(n_requests))


class TestSingleShardEquivalence:
    def test_bypassed_single_shard_is_byte_for_byte_identical(self):
        plain = run_plain_driver(seed=7)
        routed = run_routed(seed=7, force=False)
        assert routed.latency.samples == plain.latency.samples
        assert routed.payload_bytes == plain.payload_bytes
        assert routed.duration == plain.duration
        assert routed.failures == ()

    def test_forced_directory_single_shard_matches_to_float_precision(self):
        # The one startup map fetch shifts every request uniformly by
        # map_fetch_latency; per-request latency durations only differ
        # by float rounding of that offset.
        plain = run_plain_driver(seed=7)
        routed = run_routed(seed=7, force=True)
        assert len(routed.latency.samples) == len(plain.latency.samples)
        for ours, theirs in zip(routed.latency.samples, plain.latency.samples):
            assert ours == pytest.approx(theirs, abs=1e-12)

    def test_bypassed_mode_installs_no_guard(self):
        sim = Simulator()
        cluster = build_cluster(sim, 1, n_storage_servers=3)
        assert cluster.tiers[0].route_guard is None
        forced = ShardedCluster(
            Simulator(),
            cluster_platform(1, force_directory=True),
            design="CPU-only",
            n_workers=2,
            n_storage_servers=3,
        )
        assert forced.tiers[0].route_guard is not None


class TestRoutedCluster:
    def test_balanced_writes_spread_over_all_shards(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        cluster = build_cluster(sim, 4)
        cluster.directory.rebalance(range(16))
        factory = WriteRequestFactory(cluster.platform, seed=1, spread_segments=16)
        client = RoutingClient(sim, cluster, factory, concurrency=16)
        result = sim.run(until=client.run(128))
        assert result.failures == ()
        assert result.ok_requests == result.requests
        completed = {t.address: t.requests_completed.value for t in cluster.tiers}
        assert all(count > 0 for count in completed.values())
        assert cluster.directory.imbalance() == pytest.approx(1.0)
        # The cluster gauges are registered and sampleable.
        sample = registry.sample_now(sim.now)["gauges"]
        for address in cluster.addresses:
            assert sample[f"cluster.shard_heat{{component=cluster,shard={address}}}"] > 0
        assert sample["cluster.imbalance{component=cluster}"] == pytest.approx(1.0)

    def test_stale_map_retry_converges_after_directory_churn(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        cluster = build_cluster(sim, 3)
        cluster.directory.rebalance(range(6))
        factory = WriteRequestFactory(cluster.platform, seed=2, spread_segments=6)
        client = RoutingClient(sim, cluster, factory, concurrency=4, warmup_fraction=0.0)

        def churn():
            yield sim.timeout(usec(30))
            cluster.directory.remove_shard(cluster.addresses[-1])
            yield sim.timeout(usec(60))
            cluster.directory.add_shard(cluster.addresses[-1])

        sim.process(churn(), daemon=True)
        result = sim.run(until=client.run(72))
        assert result.requests == 72
        assert result.failures == ()  # every bounced request converged
        assert client.stale_retries.value > 0
        assert client.map_fetches.value >= 2
        wrong = sum(t.wrong_shard_replies.value for t in cluster.tiers)
        assert wrong == client.stale_retries.value
        names = {span.name for span in collector.spans}
        assert "route.lookup" in names and "route.stale_retry" in names

    def test_per_shard_byte_conservation_under_churn(self):
        sim = Simulator()
        cluster = build_cluster(sim, 3)
        cluster.directory.rebalance(range(6))
        factory = WriteRequestFactory(cluster.platform, seed=4, spread_segments=6)
        client = RoutingClient(sim, cluster, factory, concurrency=4, warmup_fraction=0.0)
        ledger = FlowLedger(sim, name="shards")
        ledger.attach(client.port)
        cluster.attach_ledger(ledger)

        def churn():
            for _ in range(3):
                yield sim.timeout(usec(40))
                cluster.directory.remove_shard(cluster.addresses[-1])
                yield sim.timeout(usec(40))
                cluster.directory.add_shard(cluster.addresses[-1])

        sim.process(churn(), daemon=True)
        result = sim.run(until=client.run(72))
        assert result.failures == ()
        assert client.stale_retries.value > 0
        for address in cluster.addresses:
            flow = f"shard:{address}"
            sent = ledger.total(flow, f"{client.address}.port.tx")
            assert sent > 0
            points = cluster.ingress_points(address)
            assert points == (f"{address}.port.rx",)  # CPU-only naming
            ledger.assert_balanced(flow, [f"{client.address}.port.tx"], list(points))

    def test_route_budget_exhaustion_is_terminal_not_silent(self):
        sim = Simulator()
        cluster = build_cluster(sim, 2, cluster_kw={"max_route_retries": 2})
        # A guard that always disclaims ownership: every attempt bounces.
        for tier in cluster.tiers:
            other = next(a for a in cluster.addresses if a != tier.address)
            tier.route_guard = lambda message, owner=other: {
                "owner": owner,
                "map_version": cluster.directory.version,
            }
        factory = WriteRequestFactory(cluster.platform, seed=6, spread_segments=4)
        client = RoutingClient(
            sim, cluster, factory, concurrency=2, warmup_fraction=0.0
        )
        result = sim.run(until=client.run(4))
        assert result.requests == 4
        assert len(result.failures) == 4
        assert all(status == "wrong_shard" for _lba, status in result.failures)
        assert client.route_exhausted.value == 4
        assert client.stale_retries.value == 4 * 2  # max_route_retries per request

    @pytest.mark.parametrize("design", ["Acc", "BF2", "SmartDS-2"])
    def test_route_guard_covers_every_ingress_flavor(self, design):
        # Regression: SmartDS's AAMS mixed-recv (writes) and control
        # queue (reads) bypass the base _dispatch; both must still
        # consult the route guard or misrouted requests are silently
        # served off the stale map.
        sim = Simulator()
        platform = cluster_platform(2, max_route_retries=2)
        cluster = ShardedCluster(sim, platform, design=design, n_workers=2)
        for tier in cluster.tiers:
            other = next(a for a in cluster.addresses if a != tier.address)
            tier.route_guard = lambda message, owner=other: {
                "owner": owner,
                "map_version": 0,
            }
        factory = WriteRequestFactory(platform, seed=11, spread_segments=2)
        client = RoutingClient(sim, cluster, factory, concurrency=2, warmup_fraction=0.0)
        writes = sim.run(until=client.run(2))
        assert [status for _lba, status in writes.failures] == ["wrong_shard"] * 2
        reads = sim.run(until=client.run_reads([0, 1], concurrency=2))
        assert [status for _lba, status in reads.failures] == ["wrong_shard"] * 2
        wrong = sum(t.wrong_shard_replies.value for t in cluster.tiers)
        assert wrong == 4 * platform.cluster.max_route_retries

    def test_smartds_cluster_converges_after_churn(self):
        sim = Simulator()
        cluster = ShardedCluster(
            sim, cluster_platform(2), design="SmartDS-2", n_workers=2
        )
        cluster.directory.rebalance(range(4))
        factory = WriteRequestFactory(cluster.platform, seed=13, spread_segments=4)
        client = RoutingClient(sim, cluster, factory, concurrency=4, warmup_fraction=0.0)

        def churn():
            while True:
                yield sim.timeout(usec(15))
                cluster.directory.remove_shard("shard1")
                yield sim.timeout(usec(15))
                cluster.directory.add_shard("shard1")

        sim.process(churn(), daemon=True)
        ledger = FlowLedger(sim, name="smartds-churn")
        ledger.attach(client.port)
        cluster.attach_ledger(ledger)
        result = sim.run(until=client.run(48))
        assert result.requests == 48
        assert result.failures == ()
        assert client.stale_retries.value > 0
        # SmartDS port naming differs (`shard0.smartds.port0`, one point
        # per NIC port); ingress_points resolves it so conservation
        # still balances per shard.
        for address in cluster.addresses:
            points = cluster.ingress_points(address)
            assert points and all(p.startswith(f"{address}.") for p in points)
            ledger.assert_balanced(
                f"shard:{address}", [f"{client.address}.port.tx"], list(points)
            )

    def test_routed_reads_follow_the_directory(self):
        sim = Simulator()
        cluster = build_cluster(sim, 2)
        cluster.directory.rebalance(range(4))
        factory = WriteRequestFactory(cluster.platform, seed=8, spread_segments=4)
        client = RoutingClient(sim, cluster, factory, concurrency=4, warmup_fraction=0.0)
        sim.run(until=client.run(16))
        per_segment = cluster.mapper.blocks_per_segment
        written = [(i % 4) * per_segment + i // 4 for i in range(16)]
        reads = sim.run(until=client.run_reads(written, concurrency=4))
        assert reads.requests == 16
        assert reads.failures == ()
        assert reads.payload_bytes > 0


class TestPartitionedStorageBlastRadius:
    def test_killing_one_shards_replicas_only_degrades_its_segments(self):
        recovery = dataclasses.replace(
            PlatformSpec().recovery,
            read_max_attempts=2,
            read_attempt_timeout=usec(200),
            read_deadline=usec(500),
        )
        platform = dataclasses.replace(cluster_platform(2), recovery=recovery)
        sim = Simulator()
        cluster = ShardedCluster(
            sim, platform, design="CPU-only", n_workers=2, partition_storage=True
        )
        cluster.directory.rebalance(range(2))
        assert len(cluster.testbed.storage_servers) == 2 * platform.storage.replication
        assert set(cluster.storage_group("shard0")).isdisjoint(
            cluster.storage_group("shard1")
        )
        factory = WriteRequestFactory(platform, seed=9, spread_segments=2)
        client = RoutingClient(sim, cluster, factory, concurrency=4, warmup_fraction=0.0)
        sim.run(until=client.run(16))

        victim = "shard1"
        cluster.fail_shard_storage(victim)
        per_segment = cluster.mapper.blocks_per_segment
        written = [(i % 2) * per_segment + i // 2 for i in range(16)]
        reads = sim.run(until=client.run_reads(written, concurrency=4))
        cluster.recover_shard_storage(victim)

        victim_segment = next(
            s for s in range(2) if cluster.directory.owner_of(s) == victim
        )
        failed = dict(reads.failures)
        for lba in written:
            segment = cluster.mapper.segment_of(lba)
            if segment == victim_segment:
                assert failed.get(lba) == "unavailable"
            else:
                assert lba not in failed


class TestShardedClusterConstruction:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            ShardedCluster(Simulator(), cluster_platform(2), design="warp-drive")

    def test_lookup_helpers(self):
        sim = Simulator()
        cluster = build_cluster(sim, 2)
        assert cluster.tier("shard1") is cluster.tiers[1]
        with pytest.raises(KeyError):
            cluster.tier("shard9")
        with pytest.raises(KeyError):
            cluster.storage_group("shard9")
        assert cluster.addresses == ("shard0", "shard1")

    def test_wrong_shard_counter_registered(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        cluster = build_cluster(sim, 2)
        tier = cluster.tiers[0]
        series = registry.get(
            "tier.wrong_shard_replies",
            component="middletier",
            design=tier.design_name,
            address=tier.address,
        )
        assert series is tier.wrong_shard_replies

    def test_cluster_gauges_land_in_metrics_dump(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        cluster = build_cluster(sim, 2)
        cluster.directory.rebalance(range(4))
        entries = registry.to_dict()["series"]
        probes = {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry
            for entry in entries
            if entry["type"] == "probe"
        }
        for address in cluster.addresses:
            key = (
                "cluster.shard_heat",
                (("component", "cluster"), ("shard", address)),
            )
            assert key in probes
        assert probes[("cluster.imbalance", (("component", "cluster"),))][
            "value"
        ] == pytest.approx(cluster.directory.imbalance())
        assert probes[("cluster.map_version", (("component", "cluster"),))][
            "value"
        ] == float(cluster.directory.version)

    def test_slo_accessors_without_platform_slos(self):
        sim = Simulator()
        cluster = build_cluster(sim, 2)
        assert cluster.slo_monitors() == {"shard0": None, "shard1": None}
        assert cluster.slo_verdicts() == {}


class TestSpreadSegments:
    def test_factory_interleaves_lbas_across_segments(self):
        platform = PlatformSpec()
        factory = WriteRequestFactory(platform, spread_segments=4)
        per_segment = platform.storage.segment_bytes // platform.workload.block_size
        segments = [factory.make().header["segment_id"] for _ in range(8)]
        assert segments == [0, 1, 2, 3, 0, 1, 2, 3]
        factory2 = WriteRequestFactory(platform, spread_segments=4)
        lbas = [factory2.make().header["block_id"] for _ in range(8)]
        assert lbas == [0, per_segment, 2 * per_segment, 3 * per_segment, 1, per_segment + 1, 2 * per_segment + 1, 3 * per_segment + 1]

    def test_default_spread_is_the_sequential_stream(self):
        factory = WriteRequestFactory(PlatformSpec())
        assert [factory.make().header["block_id"] for _ in range(3)] == [0, 1, 2]
        with pytest.raises(ValueError):
            WriteRequestFactory(PlatformSpec(), spread_segments=0)

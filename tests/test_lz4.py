"""Unit and property-based tests for the LZ4 block codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CorruptFrameError, lz4_compress, lz4_decompress
from repro.compression.lz4 import compression_ratio


class TestRoundTrip:
    def test_empty(self):
        assert lz4_decompress(lz4_compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"hello"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"abcd" * 1024
        blob = lz4_compress(data)
        assert len(blob) < len(data) // 10
        assert lz4_decompress(blob) == data

    def test_single_repeated_byte(self):
        data = b"\x00" * 4096
        assert lz4_decompress(lz4_compress(data)) == data

    def test_overlapping_match_offset_one(self):
        # A run of a single byte forces offset-1 overlapping copies.
        data = b"x" + b"y" * 300 + b"tail!"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_random_data_round_trips(self):
        import random

        rng = random.Random(7)
        data = rng.randbytes(8192)
        blob = lz4_compress(data)
        assert lz4_decompress(blob) == data

    def test_incompressible_data_grows_slightly(self):
        import random

        data = random.Random(1).randbytes(4096)
        blob = lz4_compress(data)
        assert len(data) < len(blob) < len(data) + 64

    def test_long_literal_run_lsic_boundary(self):
        # Literal lengths around the 15 and 15+255 LSIC boundaries.
        import random

        rng = random.Random(3)
        for size in [14, 15, 16, 269, 270, 271, 600]:
            data = rng.randbytes(size)
            assert lz4_decompress(lz4_compress(data)) == data, size

    def test_long_match_lsic_boundary(self):
        # Match lengths around 19 (4+15) and 4+15+255.
        for match_len in [18, 19, 20, 273, 274, 275]:
            data = b"12345678" + b"z" * match_len + b"ENDOFBLOCK!!"
            assert lz4_decompress(lz4_compress(data)) == data, match_len

    def test_text_like_data(self):
        data = ("the quick brown fox jumps over the lazy dog. " * 200).encode()
        blob = lz4_compress(data)
        assert lz4_decompress(blob) == data
        assert len(blob) < len(data) / 4


class TestKnownVectors:
    """Hand-decoded vectors pin the on-wire format, not just the round trip."""

    def test_literal_only_block_format(self):
        blob = lz4_compress(b"abc")
        # token: 3 literals, no match; then the literals.
        assert blob == bytes([0x30]) + b"abc"

    def test_empty_block_format(self):
        assert lz4_compress(b"") == b"\x00"

    def test_decode_foreign_sequence(self):
        # Hand-built block: 4 literals "abcd", match offset 4 length 8,
        # then final 5 literals "hello".
        blob = bytes([0x44]) + b"abcd" + bytes([0x04, 0x00]) + bytes([0x50]) + b"hello"
        assert lz4_decompress(blob) == b"abcd" + b"abcdabcd" + b"hello"

    def test_decode_lsic_literal_length(self):
        # 15 + 0 literals via LSIC extension byte 0.
        blob = bytes([0xF0, 0x00]) + b"0123456789abcde"
        assert lz4_decompress(blob) == b"0123456789abcde"


class TestCorruptInput:
    def test_empty_input_rejected(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(b"")

    def test_truncated_literals(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x50]) + b"ab")  # promises 5 literals, has 2

    def test_truncated_offset(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x01")  # offset needs 2 bytes

    def test_zero_offset(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x00\x00" + bytes([0x50]) + b"hello")

    def test_offset_before_start(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x09\x00" + bytes([0x50]) + b"hello")

    def test_truncated_lsic(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0xF0]))  # LSIC extension missing

    def test_max_output_guard(self):
        data = b"a" * 100000
        blob = lz4_compress(data)
        with pytest.raises(CorruptFrameError):
            lz4_decompress(blob, max_output=1000)


class TestRatio:
    def test_ratio_of_empty_is_one(self):
        assert compression_ratio(b"") == 1.0

    def test_ratio_of_repetitive_data_is_high(self):
        assert compression_ratio(b"ab" * 4096) > 20.0


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=2048))
def test_roundtrip_property(data):
    assert lz4_decompress(lz4_compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=16), st.integers(min_value=1, max_value=64)),
        min_size=1,
        max_size=32,
    )
)
def test_roundtrip_repetitive_property(chunks):
    """Structured repetitive inputs (motifs repeated) round-trip too."""
    data = b"".join(motif * count for motif, count in chunks)
    assert lz4_decompress(lz4_compress(data)) == data

"""Unit and property-based tests for the LZ4 block codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CorruptFrameError, lz4_compress, lz4_decompress
from repro.compression.lz4 import compression_ratio


class TestRoundTrip:
    def test_empty(self):
        assert lz4_decompress(lz4_compress(b"")) == b""

    def test_short_literal_only(self):
        data = b"hello"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"abcd" * 1024
        blob = lz4_compress(data)
        assert len(blob) < len(data) // 10
        assert lz4_decompress(blob) == data

    def test_single_repeated_byte(self):
        data = b"\x00" * 4096
        assert lz4_decompress(lz4_compress(data)) == data

    def test_overlapping_match_offset_one(self):
        # A run of a single byte forces offset-1 overlapping copies.
        data = b"x" + b"y" * 300 + b"tail!"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_random_data_round_trips(self):
        import random

        rng = random.Random(7)
        data = rng.randbytes(8192)
        blob = lz4_compress(data)
        assert lz4_decompress(blob) == data

    def test_incompressible_data_grows_slightly(self):
        import random

        data = random.Random(1).randbytes(4096)
        blob = lz4_compress(data)
        assert len(data) < len(blob) < len(data) + 64

    def test_long_literal_run_lsic_boundary(self):
        # Literal lengths around the 15 and 15+255 LSIC boundaries.
        import random

        rng = random.Random(3)
        for size in [14, 15, 16, 269, 270, 271, 600]:
            data = rng.randbytes(size)
            assert lz4_decompress(lz4_compress(data)) == data, size

    def test_long_match_lsic_boundary(self):
        # Match lengths around 19 (4+15) and 4+15+255.
        for match_len in [18, 19, 20, 273, 274, 275]:
            data = b"12345678" + b"z" * match_len + b"ENDOFBLOCK!!"
            assert lz4_decompress(lz4_compress(data)) == data, match_len

    def test_text_like_data(self):
        data = ("the quick brown fox jumps over the lazy dog. " * 200).encode()
        blob = lz4_compress(data)
        assert lz4_decompress(blob) == data
        assert len(blob) < len(data) / 4


class TestKnownVectors:
    """Hand-decoded vectors pin the on-wire format, not just the round trip."""

    def test_literal_only_block_format(self):
        blob = lz4_compress(b"abc")
        # token: 3 literals, no match; then the literals.
        assert blob == bytes([0x30]) + b"abc"

    def test_empty_block_format(self):
        assert lz4_compress(b"") == b"\x00"

    def test_decode_foreign_sequence(self):
        # Hand-built block: 4 literals "abcd", match offset 4 length 8,
        # then final 5 literals "hello".
        blob = bytes([0x44]) + b"abcd" + bytes([0x04, 0x00]) + bytes([0x50]) + b"hello"
        assert lz4_decompress(blob) == b"abcd" + b"abcdabcd" + b"hello"

    def test_decode_lsic_literal_length(self):
        # 15 + 0 literals via LSIC extension byte 0.
        blob = bytes([0xF0, 0x00]) + b"0123456789abcde"
        assert lz4_decompress(blob) == b"0123456789abcde"


class TestCorruptInput:
    def test_empty_input_rejected(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(b"")

    def test_truncated_literals(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x50]) + b"ab")  # promises 5 literals, has 2

    def test_truncated_offset(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x01")  # offset needs 2 bytes

    def test_zero_offset(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x00\x00" + bytes([0x50]) + b"hello")

    def test_offset_before_start(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0x14]) + b"a" + b"\x09\x00" + bytes([0x50]) + b"hello")

    def test_truncated_lsic(self):
        with pytest.raises(CorruptFrameError):
            lz4_decompress(bytes([0xF0]))  # LSIC extension missing

    def test_max_output_guard(self):
        data = b"a" * 100000
        blob = lz4_compress(data)
        with pytest.raises(CorruptFrameError):
            lz4_decompress(blob, max_output=1000)


class TestRatio:
    def test_ratio_of_empty_is_one(self):
        assert compression_ratio(b"") == 1.0

    def test_ratio_of_repetitive_data_is_high(self):
        assert compression_ratio(b"ab" * 4096) > 20.0


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=0, max_size=2048))
def test_roundtrip_property(data):
    assert lz4_decompress(lz4_compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=16), st.integers(min_value=1, max_value=64)),
        min_size=1,
        max_size=32,
    )
)
def test_roundtrip_repetitive_property(chunks):
    """Structured repetitive inputs (motifs repeated) round-trip too."""
    data = b"".join(motif * count for motif, count in chunks)
    assert lz4_decompress(lz4_compress(data)) == data


class TestBoundedHashTable:
    """The compressor's match table is a fixed-size array (reference-LZ4
    style), so memory stays flat no matter how large the input is —
    the seed's per-call dict grew with every position it scanned."""

    def test_corpus_blocks_round_trip(self):
        from repro.compression.corpus import SilesiaLikeCorpus

        for file in SilesiaLikeCorpus().files():
            for start in range(0, len(file.data), 4096):
                block = file.data[start : start + 4096]
                assert lz4_decompress(lz4_compress(block)) == block, file.name

    def test_corpus_files_round_trip_whole(self):
        from repro.compression.corpus import SilesiaLikeCorpus

        for file in SilesiaLikeCorpus().files():
            assert lz4_decompress(lz4_compress(file.data)) == file.data, file.name

    def test_table_size_is_bounded_and_input_independent(self):
        from repro.compression.lz4 import HASH_LOG

        sizes = {}
        for nbytes in (4096, 64 * 1024, 512 * 1024):
            data = (b"The quick brown fox jumps over the lazy dog. " * 1024)[:nbytes]
            stats: dict = {}
            lz4_compress(data, _stats=stats)
            assert stats["table_slots"] == 2**HASH_LOG
            assert stats["peak_table_entries"] <= stats["table_slots"]
            sizes[nbytes] = stats["table_slots"]
        # The table does not scale with the input: 512 KiB uses the same
        # fixed allocation as 4 KiB (the seed's dict held one entry per
        # scanned position — ~128x more keys for the larger input).
        assert len(set(sizes.values())) == 1

    def test_tiny_table_still_round_trips(self):
        # A 16-slot table collides constantly; correctness must not
        # depend on table capacity, only speed does.
        import random

        rng = random.Random(11)
        for data in (
            b"abcd" * 2048,
            rng.randbytes(8192),
            (b"The quick brown fox. " * 400),
        ):
            blob = lz4_compress(data, _hash_log=4)
            assert lz4_decompress(blob) == data

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=2048))
    def test_stats_hook_reports_bounded_entries(self, data):
        from repro.compression.lz4 import HASH_LOG

        stats: dict = {}
        blob = lz4_compress(data, _stats=stats)
        assert lz4_decompress(blob) == data
        assert stats["table_slots"] in (0, 2**HASH_LOG)
        assert 0 <= stats["peak_table_entries"] <= 2**HASH_LOG

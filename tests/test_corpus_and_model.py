"""Tests for the synthetic corpus and the compression cost models."""

import pytest

from repro.compression import (
    BF2_ENGINE,
    CPU_CORE,
    CPU_SMT_PAIR,
    FPGA_ENGINE,
    CompressorProfile,
    RatioSampler,
    SilesiaLikeCorpus,
    compressed_size,
    lz4_compress,
)
from repro.units import gbps


class TestCorpus:
    def test_deterministic_for_same_seed(self):
        a = SilesiaLikeCorpus(seed=11, file_size=4096)
        b = SilesiaLikeCorpus(seed=11, file_size=4096)
        assert [f.data for f in a.files()] == [f.data for f in b.files()]

    def test_different_seeds_differ(self):
        a = SilesiaLikeCorpus(seed=1, file_size=4096)
        b = SilesiaLikeCorpus(seed=2, file_size=4096)
        assert [f.data for f in a.files()] != [f.data for f in b.files()]

    def test_files_have_requested_size(self):
        corpus = SilesiaLikeCorpus(seed=3, file_size=8192)
        assert all(len(f) == 8192 for f in corpus.files())

    def test_class_mix_present(self):
        corpus = SilesiaLikeCorpus(seed=3, file_size=4096)
        categories = {f.category for f in corpus.files()}
        assert {"dickens", "xml", "nci", "mozilla", "x-ray", "noise"} <= categories

    def test_blocks_cover_files(self):
        corpus = SilesiaLikeCorpus(seed=3, file_size=8192)
        blocks = corpus.blocks(block_size=4096)
        assert len(blocks) == 2 * len(corpus.files())
        assert all(len(block) == 4096 for block in blocks)

    def test_text_compresses_better_than_noise(self):
        corpus = SilesiaLikeCorpus(seed=5, file_size=16384)
        by_category = {f.category: f for f in corpus.files()}
        text_ratio = len(by_category["dickens"].data) / len(
            lz4_compress(by_category["dickens"].data)
        )
        noise_ratio = len(by_category["noise"].data) / len(lz4_compress(by_category["noise"].data))
        assert text_ratio > 1.6  # real Silesia dickens under LZ4 is ~1.6x
        assert noise_ratio < 1.05

    def test_aggregate_ratio_near_silesia_lz4(self):
        """Real Silesia under LZ4 lands around 2.1x; our mix should be close."""
        corpus = SilesiaLikeCorpus(seed=2023, file_size=32768)
        ratio = corpus.aggregate_ratio(block_size=4096, sample_limit=64)
        assert 1.6 < ratio < 2.9

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            SilesiaLikeCorpus(file_size=10)
        with pytest.raises(ValueError):
            SilesiaLikeCorpus(file_size=4096).blocks(block_size=1)


class TestCompressorProfiles:
    def test_time_scales_with_size(self):
        assert CPU_CORE.time_for(2 * 4096) == pytest.approx(2 * CPU_CORE.time_for(4096))

    def test_calibration_points(self):
        # 4 KB at 2.1 Gb/s is ~15.6 us; at 100 Gb/s ~0.33 us + setup.
        assert CPU_CORE.time_for(4096) == pytest.approx(4096 / gbps(2.1))
        assert FPGA_ENGINE.rate == gbps(100)
        assert BF2_ENGINE.rate == gbps(40)
        assert CPU_SMT_PAIR.rate == gbps(2.7)

    def test_setup_time_included(self):
        profile = CompressorProfile("x", rate=gbps(1), setup_time=1e-6)
        assert profile.time_for(0) == pytest.approx(1e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CPU_CORE.time_for(-1)


class TestCompressedSize:
    def test_halving(self):
        assert compressed_size(4096, 2.0) == 2048

    def test_expansion_ratio_below_one(self):
        assert compressed_size(4096, 0.99) > 4096

    def test_zero_bytes(self):
        assert compressed_size(0, 2.0) == 0

    def test_minimum_one_byte(self):
        assert compressed_size(1, 1000.0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compressed_size(-1, 2.0)
        with pytest.raises(ValueError):
            compressed_size(10, 0.0)


class TestRatioSampler:
    def test_constant_sampler(self):
        sampler = RatioSampler.constant(2.5)
        assert sampler.sample() == 2.5
        assert sampler.mean == 2.5

    def test_samples_come_from_calibration_set(self):
        sampler = RatioSampler([1.0, 2.0, 3.0], seed=1)
        assert {sampler.sample() for _ in range(100)} <= {1.0, 2.0, 3.0}

    def test_deterministic_given_seed(self):
        a = RatioSampler([1.0, 2.0, 3.0], seed=9)
        b = RatioSampler([1.0, 2.0, 3.0], seed=9)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_from_corpus(self):
        corpus = SilesiaLikeCorpus(seed=4, file_size=8192)
        sampler = RatioSampler.from_corpus(corpus, seed=0, sample_limit=16)
        assert sampler.mean > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RatioSampler([])
        with pytest.raises(ValueError):
            RatioSampler([0.0])

"""Unit tests for metric collectors and reporting."""

import pytest

from repro.telemetry import BandwidthMeter, Counter, LatencyRecorder, Series, format_series, format_table


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("requests")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestLatencyRecorder:
    def test_mean(self):
        recorder = LatencyRecorder()
        for value in [1.0, 2.0, 3.0]:
            recorder.record(value)
        assert recorder.mean() == pytest.approx(2.0)

    def test_percentile_nearest_rank(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):  # 1..100
            recorder.record(float(value))
        assert recorder.percentile(0.50) == 50.0
        assert recorder.percentile(0.99) == 99.0
        assert recorder.percentile(1.0) == 100.0

    def test_p999_picks_tail_sample(self):
        recorder = LatencyRecorder()
        for _ in range(999):
            recorder.record(1.0)
        recorder.record(100.0)
        assert recorder.percentile(0.999) == 1.0
        assert recorder.percentile(1.0) == 100.0

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert set(recorder.summary()) == {"avg", "p50", "p99", "p999"}

    def test_empty_recorder_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(0.99)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_bad_fraction_rejected(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(0.0)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)


class TestBandwidthMeter:
    def test_rate_over_event_span(self):
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        meter.record(3.0, 100)
        assert meter.rate() == pytest.approx(100.0)  # 200 B over 2 s

    def test_rate_with_explicit_duration(self):
        meter = BandwidthMeter()
        meter.record(0.5, 500)
        assert meter.rate(duration=5.0) == pytest.approx(100.0)

    def test_empty_meter_rate_is_zero(self):
        assert BandwidthMeter().rate() == 0.0

    def test_single_event_rate_is_zero_without_duration(self):
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        assert meter.rate() == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_series_peak(self):
        series = Series("s", (1.0, 2.0, 3.0), (5.0, 9.0, 7.0))
        assert series.peak() == 9.0

    def test_format_series_shares_x_axis(self):
        a = Series("a", (1.0, 2.0), (10.0, 20.0))
        b = Series("b", (1.0, 2.0), (30.0, 40.0))
        text = format_series([a, b], x_label="cores")
        assert "cores" in text and "a" in text and "b" in text

    def test_format_series_rejects_mismatched_x(self):
        a = Series("a", (1.0, 2.0), (10.0, 20.0))
        b = Series("b", (1.0, 3.0), (30.0, 40.0))
        with pytest.raises(ValueError):
            format_series([a, b], x_label="x")

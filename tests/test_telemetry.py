"""Unit tests for metric collectors, the registry, and reporting."""

import math

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    BandwidthMeter,
    Counter,
    Gauge,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    Series,
    format_series,
    format_table,
    registry_for,
)
from repro.units import usec


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("requests")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestLatencyRecorder:
    def test_mean(self):
        recorder = LatencyRecorder()
        for value in [1.0, 2.0, 3.0]:
            recorder.record(value)
        assert recorder.mean() == pytest.approx(2.0)

    def test_percentile_nearest_rank(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):  # 1..100
            recorder.record(float(value))
        assert recorder.percentile(0.50) == 50.0
        assert recorder.percentile(0.99) == 99.0
        assert recorder.percentile(1.0) == 100.0

    def test_p999_picks_tail_sample(self):
        recorder = LatencyRecorder()
        for _ in range(999):
            recorder.record(1.0)
        recorder.record(100.0)
        assert recorder.percentile(0.999) == 1.0
        assert recorder.percentile(1.0) == 100.0

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert set(recorder.summary()) == {"avg", "p50", "p99", "p999"}

    def test_empty_recorder_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(0.99)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_bad_fraction_rejected(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(0.0)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)


class TestLatencyRecorderReservoir:
    def test_count_and_mean_stay_exact(self):
        exact = LatencyRecorder()
        sampled = LatencyRecorder(reservoir=32, seed=1)
        values = [usec(1) * (i % 97 + 1) for i in range(10_000)]
        for value in values:
            exact.record(value)
            sampled.record(value)
        assert sampled.count == 10_000
        assert len(sampled.samples) == 32
        assert sampled.mean() == pytest.approx(exact.mean(), rel=1e-12)

    def test_same_seed_keeps_same_samples(self):
        a = LatencyRecorder(reservoir=16, seed=7)
        b = LatencyRecorder(reservoir=16, seed=7)
        for i in range(5_000):
            a.record(float(i))
            b.record(float(i))
        assert a.samples == b.samples

    def test_different_seed_keeps_different_samples(self):
        a = LatencyRecorder(reservoir=16, seed=7)
        b = LatencyRecorder(reservoir=16, seed=8)
        for i in range(5_000):
            a.record(float(i))
            b.record(float(i))
        assert a.samples != b.samples

    def test_percentiles_estimate_over_kept_sample(self):
        recorder = LatencyRecorder(reservoir=256, seed=3)
        for i in range(1, 10_001):
            recorder.record(float(i))
        # Uniform 1..10000: the reservoir median lands near 5000.
        assert 3000.0 <= recorder.percentile(0.5) <= 7000.0

    def test_below_capacity_is_exact(self):
        recorder = LatencyRecorder(reservoir=100, seed=0)
        for value in [1.0, 2.0, 3.0]:
            recorder.record(value)
        assert recorder.samples == (1.0, 2.0, 3.0)
        assert recorder.percentile(0.5) == 2.0

    def test_invalid_reservoir_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder(reservoir=0)


class TestBandwidthMeter:
    def test_rate_over_event_span(self):
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        meter.record(3.0, 100)
        assert meter.rate() == pytest.approx(100.0)  # 200 B over 2 s

    def test_rate_with_explicit_duration(self):
        meter = BandwidthMeter()
        meter.record(0.5, 500)
        assert meter.rate(duration=5.0) == pytest.approx(100.0)

    def test_empty_meter_rate_is_zero(self):
        assert BandwidthMeter().rate() == 0.0

    def test_single_event_rate_is_zero_without_duration(self):
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        assert meter.rate() == 0.0

    def test_single_event_with_explicit_window_counts(self):
        # Regression: a lone burst used to report 0.0 because the
        # implicit first-to-last span was empty; spreading it over the
        # measurement window recovers the real rate.
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        assert meter.rate(duration=2.0) == pytest.approx(50.0)

    def test_non_positive_window_raises(self):
        meter = BandwidthMeter()
        meter.record(1.0, 100)
        with pytest.raises(ValueError):
            meter.rate(duration=0.0)
        with pytest.raises(ValueError):
            meter.rate(duration=-1.0)


class TestHistogram:
    def test_observe_and_exact_stats(self):
        histogram = Histogram("lat")
        for value in [usec(1), usec(2), usec(4)]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean() == pytest.approx(usec(7) / 3)
        assert histogram.min == pytest.approx(usec(1))
        assert histogram.max == pytest.approx(usec(4))

    def test_exact_bound_lands_in_its_bucket(self):
        histogram = Histogram("h", lowest=1.0, factor=2.0, n_buckets=8)
        histogram.observe(4.0)  # exactly bounds[2]
        assert histogram.counts[2] == 1

    def test_percentile_within_one_factor(self):
        histogram = Histogram("h", lowest=1e-6, factor=2.0)
        for _ in range(99):
            histogram.observe(usec(10))
        histogram.observe(usec(500))
        p50 = histogram.percentile(0.5)
        assert usec(10) <= p50 <= usec(20)
        assert histogram.percentile(1.0) == pytest.approx(usec(500))

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", lowest=1.0, factor=2.0, n_buckets=3)
        histogram.observe(1e9)  # far above the top bound (4.0)
        assert histogram.counts[-1] == 1
        assert histogram.percentile(0.99) == pytest.approx(1e9)

    def test_summary_matches_latency_recorder_shape(self):
        histogram = Histogram()
        histogram.observe(usec(5))
        assert set(histogram.summary()) == {"avg", "p50", "p99", "p999"}

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Histogram(lowest=0.0)
        with pytest.raises(ValueError):
            Histogram(factor=1.0)
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)
        with pytest.raises(ValueError):
            Histogram().mean()


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", component="cache")
        b = registry.counter("hits", component="cache")
        c = registry.counter("hits", component="tier")
        assert a is b
        assert a is not c

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ValueError):
            registry.gauge("depth")

    def test_register_same_object_is_noop(self):
        registry = MetricsRegistry()
        counter = Counter("hits")
        registry.register(counter, "cache.hits")
        registry.register(counter, "cache.hits")
        assert registry.get("cache.hits") is counter

    def test_register_collision_raises(self):
        registry = MetricsRegistry()
        registry.register(Counter("hits"), "cache.hits")
        with pytest.raises(ValueError):
            registry.register(Counter("hits"), "cache.hits")

    def test_register_instance_disambiguates(self):
        registry = MetricsRegistry()
        first = Gauge("occ")
        second = Gauge("occ")
        registry.register_instance(first, "hbm.occupancy", component="hbm")
        registry.register_instance(second, "hbm.occupancy", component="hbm")
        assert registry.get("hbm.occupancy", component="hbm") is first
        assert registry.get("hbm.occupancy", component="hbm", instance="1") is second

    def test_attach_and_registry_for(self):
        sim = Simulator()
        assert registry_for(sim) is None
        registry = MetricsRegistry().attach(sim)
        assert registry_for(sim) is registry
        assert registry_for(None) is None  # components with sim=None

    def test_to_dict_shapes(self):
        registry = MetricsRegistry(name="r")
        registry.counter("c", k="v").add(3)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        registry.register(LatencyRecorder("lat"), "lat")
        registry.register(BandwidthMeter("bw"), "bw")
        document = registry.to_dict()
        assert document["registry"] == "r"
        by_name = {entry["name"]: entry for entry in document["series"]}
        assert by_name["c"]["type"] == "counter" and by_name["c"]["value"] == 3
        assert by_name["c"]["labels"] == {"k": "v"}
        assert by_name["g"]["type"] == "gauge" and by_name["g"]["peak"] == 2
        assert by_name["h"]["type"] == "histogram" and by_name["h"]["count"] == 1
        assert by_name["lat"]["type"] == "latency" and by_name["lat"]["summary"] is None
        assert by_name["bw"]["type"] == "bandwidth"

    def test_to_dict_sorted_and_probes_included(self):
        registry = MetricsRegistry()
        # Registered deliberately out of order, with label variants.
        registry.counter("zeta").add()
        registry.gauge_callable("probe.depth", lambda: 4.0, component="tier")
        registry.counter("alpha", shard="s1").add()
        registry.counter("alpha", shard="s0").add()
        series = registry.to_dict()["series"]
        keys = [
            (entry["name"], tuple(sorted(entry["labels"].items())))
            for entry in series
        ]
        assert keys == sorted(keys)  # dumps of the same run diff cleanly
        probe = next(entry for entry in series if entry["type"] == "probe")
        assert probe["name"] == "probe.depth"
        assert probe["value"] == 4.0

    def test_to_dict_survives_crashing_probe(self):
        registry = MetricsRegistry()

        def bad() -> float:
            raise RuntimeError("sensor detached")

        registry.gauge_callable("probe.bad", bad)
        (entry,) = registry.to_dict()["series"]
        assert entry["type"] == "probe"
        assert entry["value"] is None

    def test_gauge_callable_probed_at_sample_time(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.gauge_callable("queue.depth", lambda: depth[0], component="tier")
        depth[0] = 7
        sample = registry.sample_now(1.5)
        assert sample["t"] == 1.5
        assert sample["gauges"]["queue.depth{component=tier}"] == 7

    def test_sampler_records_and_drains(self):
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        gauge = registry.gauge("level")

        def work():
            for i in range(4):
                gauge.set(i)
                yield sim.timeout(usec(300))

        sim.process(work())
        registry.start_sampler(sim, usec(100))
        sim.run()  # must terminate: the sampler stops on an empty queue
        assert len(registry.samples()) >= 4
        assert registry.samples()[-1]["gauges"]["level"] == 3

    def test_sampler_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsRegistry().start_sampler(Simulator(), 0.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_series_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_series_peak(self):
        series = Series("s", (1.0, 2.0, 3.0), (5.0, 9.0, 7.0))
        assert series.peak() == 9.0

    def test_format_series_shares_x_axis(self):
        a = Series("a", (1.0, 2.0), (10.0, 20.0))
        b = Series("b", (1.0, 2.0), (30.0, 40.0))
        text = format_series([a, b], x_label="cores")
        assert "cores" in text and "a" in text and "b" in text

    def test_format_series_rejects_mismatched_x(self):
        a = Series("a", (1.0, 2.0), (10.0, 20.0))
        b = Series("b", (1.0, 3.0), (30.0, 40.0))
        with pytest.raises(ValueError):
            format_series([a, b], x_label="x")

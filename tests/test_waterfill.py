"""Unit and property-based tests for the water-filling allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import water_fill


class TestWaterFillBasics:
    def test_undersubscribed_everyone_gets_demand(self):
        assert water_fill(100.0, [10.0, 20.0, 30.0]) == [10.0, 20.0, 30.0]

    def test_oversubscribed_equal_split(self):
        assert water_fill(90.0, [100.0, 100.0, 100.0]) == [30.0, 30.0, 30.0]

    def test_small_demand_saturates_first(self):
        allocations = water_fill(100.0, [10.0, 1000.0, 1000.0])
        assert allocations[0] == 10.0
        assert allocations[1] == pytest.approx(45.0)
        assert allocations[2] == pytest.approx(45.0)

    def test_weights_bias_the_split(self):
        allocations = water_fill(90.0, [1000.0, 1000.0], weights=[2.0, 1.0])
        assert allocations[0] == pytest.approx(60.0)
        assert allocations[1] == pytest.approx(30.0)

    def test_zero_capacity(self):
        assert water_fill(0.0, [5.0, 5.0]) == [0.0, 0.0]

    def test_empty_demands(self):
        assert water_fill(10.0, []) == []

    def test_zero_demand_flow_gets_zero(self):
        assert water_fill(10.0, [0.0, 5.0]) == [0.0, 5.0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            water_fill(-1.0, [1.0])
        with pytest.raises(ValueError):
            water_fill(1.0, [-1.0])
        with pytest.raises(ValueError):
            water_fill(1.0, [1.0], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            water_fill(1.0, [1.0], weights=[0.0])


demand_lists = st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20)
capacities = st.floats(min_value=0.0, max_value=1e6)


class TestWaterFillProperties:
    @given(capacities, demand_lists)
    def test_never_exceeds_demand_or_capacity(self, capacity, demands):
        allocations = water_fill(capacity, demands)
        assert len(allocations) == len(demands)
        for allocation, demand in zip(allocations, demands):
            assert 0.0 <= allocation <= demand + 1e-6
        assert sum(allocations) <= capacity + 1e-6 * max(1.0, capacity)

    @given(capacities, demand_lists)
    def test_work_conserving_when_oversubscribed(self, capacity, demands):
        allocations = water_fill(capacity, demands)
        total_demand = sum(demands)
        expected = min(capacity, total_demand)
        assert sum(allocations) == pytest.approx(expected, rel=1e-6, abs=1e-6)

    @given(capacities, demand_lists)
    def test_capped_flows_only_below_fair_share(self, capacity, demands):
        """If a flow is throttled, no other flow got more than it unless that
        other flow's demand was itself smaller."""
        allocations = water_fill(capacity, demands)
        throttled = [
            i for i, (a, d) in enumerate(zip(allocations, demands)) if a < d - 1e-6
        ]
        for i in throttled:
            for j in range(len(demands)):
                if j != i and allocations[j] > allocations[i] + 1e-6:
                    assert allocations[j] == pytest.approx(demands[j], rel=1e-6, abs=1e-6)

"""Flight recorder: tail-based trace sampling and the bounded ring.

Covers classification (kept-for-cause vs healthy 1-in-N sample), the
ring's capacity bound, seeded determinism, auto-dump on first anomaly,
schema-valid export, and the end-to-end wiring: a tier built on a
``FlightSpec(enabled=True)`` platform records its own traffic.
"""

import dataclasses
import json

import pytest

from repro.middletier import CpuOnlyMiddleTier, Testbed
from repro.params import DEFAULT_PLATFORM, FlightSpec
from repro.sim import Simulator
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.schemas import validate_flight
from repro.telemetry.spans import SpanCollector
from repro.units import msec, usec
from repro.workloads import ClientDriver, WriteRequestFactory


def _finish_trace(collector, sim, trace_id, outcome="ok", duration=usec(10),
                  child_name="net.tx", child_outcome="ok", op="write_request"):
    """One root + one child, finished `duration` after they open."""
    start = sim.now
    root = collector.request(op, trace_id)
    child = root.child(child_name)
    sim._now = start + duration
    child.finish(child_outcome)
    root.finish(outcome)
    return root


class TestClassification:
    def _recorder(self, **spec_overrides):
        sim = Simulator()
        collector = SpanCollector(sim)
        spec = FlightSpec(enabled=True, healthy_every=0, **spec_overrides)
        return sim, collector, FlightRecorder(collector, spec)

    def test_shed_and_failed_roots_kept(self):
        sim, collector, flight = self._recorder()
        _finish_trace(collector, sim, 1, outcome="shed")
        _finish_trace(collector, sim, 2, outcome="failed")
        _finish_trace(collector, sim, 3, outcome="ok")
        assert [r.reasons for r in flight.records] == [("shed",), ("failed",)]
        assert flight.traces_seen == 3
        assert flight.traces_kept == 2
        assert all(record.anomalous for record in flight.records)

    def test_anomalous_stage_keeps_healthy_root(self):
        sim, collector, flight = self._recorder()
        _finish_trace(collector, sim, 1, child_outcome="degraded")
        (record,) = flight.records
        assert record.outcome == "ok"
        assert record.reasons == ("stage_degraded",)

    def test_wrong_shard_bounce_kept(self):
        sim, collector, flight = self._recorder()
        root = collector.request("write_request", 1)
        root.event("route.wrong_shard")
        root.finish("ok")
        (record,) = flight.records
        assert "wrong_shard" in record.reasons

    def test_static_slow_threshold_per_op(self):
        sim, collector, flight = self._recorder(
            slow_threshold=msec(1), slow_thresholds=(("read_request", usec(50)),)
        )
        _finish_trace(collector, sim, 1, duration=usec(100))  # write: fast
        _finish_trace(collector, sim, 2, duration=usec(100), op="read_request")
        (record,) = flight.records
        assert record.op == "read_request"
        assert record.reasons == ("slow",)

    def test_dynamic_p99_kicks_in_after_warmup(self):
        sim, collector, flight = self._recorder(
            slow_threshold=msec(50), dynamic_min_samples=100
        )
        for trace_id in range(100):
            _finish_trace(collector, sim, trace_id, duration=usec(10))
        assert flight.traces_kept == 0  # cold: nothing anomalous
        _finish_trace(collector, sim, 1000, duration=usec(200))
        (record,) = flight.records
        assert record.reasons == ("slow_p99",)

    def test_outlier_does_not_raise_its_own_bar(self):
        # The dynamic histogram is fed *after* classification: the first
        # post-warmup outlier is judged against the fast baseline.
        sim, collector, flight = self._recorder(
            slow_threshold=msec(50), dynamic_min_samples=10
        )
        for trace_id in range(10):
            _finish_trace(collector, sim, trace_id, duration=usec(10))
        _finish_trace(collector, sim, 100, duration=msec(10))
        assert flight.traces_kept == 1

    def test_healthy_traces_dropped_when_sampling_disabled(self):
        sim, collector, flight = self._recorder()  # healthy_every=0
        for trace_id in range(20):
            _finish_trace(collector, sim, trace_id)
        assert flight.traces_kept == 0
        assert flight.traces_seen == 20


class TestHealthySampling:
    def test_one_in_n_keeps_a_baseline(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=4))
        for trace_id in range(64):
            _finish_trace(collector, sim, trace_id)
        assert 0 < flight.traces_kept < 64
        assert all(record.reasons == ("sampled",) for record in flight.records)
        assert not any(record.anomalous for record in flight.records)
        assert flight.anomalous_records() == ()

    def test_same_seed_same_sample(self):
        def kept_ids(seed):
            sim = Simulator()
            collector = SpanCollector(sim)
            flight = FlightRecorder(
                collector, FlightSpec(enabled=True, healthy_every=4, seed=seed)
            )
            for trace_id in range(64):
                _finish_trace(collector, sim, trace_id)
            return [record.trace_id for record in flight.records]

        assert kept_ids(7) == kept_ids(7)
        assert kept_ids(7) != kept_ids(8)


class TestRing:
    def test_capacity_bounds_memory_keeps_newest(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(
            collector, FlightSpec(enabled=True, capacity=8, healthy_every=0)
        )
        for trace_id in range(20):
            _finish_trace(collector, sim, trace_id, outcome="shed")
        assert len(flight.records) == 8
        assert flight.traces_kept == 20
        assert flight.traces_evicted == 12
        assert [record.trace_id for record in flight.records] == list(range(12, 20))

    def test_kept_by_reason_counts(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=0))
        _finish_trace(collector, sim, 1, outcome="shed")
        _finish_trace(collector, sim, 2, outcome="shed", child_outcome="retried")
        assert flight.kept_by_reason == {"shed": 2, "stage_retried": 1}


class TestAutoDump:
    def test_first_anomaly_writes_once(self, tmp_path):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(
            collector, FlightSpec(enabled=True, healthy_every=1)
        )
        path = str(tmp_path / "flight.json")
        flight.arm_auto_dump(path)
        _finish_trace(collector, sim, 1)  # healthy sample: no dump
        assert flight.auto_dumped is None
        _finish_trace(collector, sim, 2, outcome="shed")
        assert flight.auto_dumped == path
        first = json.loads(open(path).read())
        assert first["kept"] == 2
        _finish_trace(collector, sim, 3, outcome="failed")  # no re-dump
        assert json.loads(open(path).read())["kept"] == 2


class TestExport:
    def test_to_dict_is_schema_valid(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=1))
        _finish_trace(collector, sim, 1, outcome="shed")
        _finish_trace(collector, sim, 2)
        validate_flight({"recorders": [flight.to_dict()]})

    def test_record_dump_carries_span_tree(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        flight = FlightRecorder(collector, FlightSpec(enabled=True, healthy_every=0))
        _finish_trace(collector, sim, 1, outcome="shed", duration=usec(10))
        dump = flight.to_dict()["records"][0]
        assert dump["outcome"] == "shed"
        assert dump["duration_us"] == pytest.approx(10.0)
        assert [span["name"] for span in dump["spans"]] == [
            "write_request",
            "net.tx",
        ]


class TestEndToEnd:
    def test_platform_flight_spec_arms_recorder_on_tier(self):
        platform = dataclasses.replace(
            DEFAULT_PLATFORM, flight=FlightSpec(enabled=True, healthy_every=1)
        )
        sim = Simulator()
        registry = MetricsRegistry().attach(sim)
        collector = SpanCollector(sim)
        testbed = Testbed(sim, platform, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        assert tier.flight is collector.flight is not None
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(platform, seed=1),
            concurrency=4,
            warmup_fraction=0.0,
        )
        sim.run(until=driver.run(8))
        flight = tier.flight
        assert flight.traces_seen == 8
        assert flight.traces_kept == 8  # healthy_every=1 keeps everything
        # The registry probes report the recorder's counters.
        names = {series["name"] for series in registry.to_dict()["series"]}
        assert {"flight.traces_seen", "flight.traces_kept"} <= names

    def test_disabled_platform_leaves_collector_bare(self):
        sim = Simulator()
        collector = SpanCollector(sim)
        testbed = Testbed(sim, DEFAULT_PLATFORM, n_storage_servers=3)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        assert tier.flight is None
        assert collector.flight is None

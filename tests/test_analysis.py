"""Tests for the fleet-sizing / TCO analysis."""

import pytest

from repro.analysis import FleetPlan, ServerCost, plan_fleet
from repro.units import gbps


class TestServerCost:
    def test_annual_cost_components(self):
        cost = ServerCost(capex_usd=10_000, lifetime_years=5, power_watts=0)
        assert cost.annual_usd == pytest.approx(2000.0)

    def test_power_term(self):
        cost = ServerCost(capex_usd=0, power_watts=1000, usd_per_kwh=0.1)
        assert cost.annual_usd == pytest.approx(24 * 365 * 0.1)

    def test_bad_lifetime(self):
        with pytest.raises(ValueError):
            ServerCost(lifetime_years=0).annual_usd


class TestPlanFleet:
    def test_server_count_scales_with_traffic(self):
        plan = plan_fleet("CPU-only", gbps(54), gbps(5400), utilization_target=1.0)
        assert plan.servers == 100

    def test_utilization_headroom_adds_servers(self):
        tight = plan_fleet("x", gbps(100), gbps(1000), utilization_target=1.0)
        headroom = plan_fleet("x", gbps(100), gbps(1000), utilization_target=0.5)
        assert headroom.servers == 2 * tight.servers

    def test_paper_ratio_recovered(self):
        """A SmartDS server at ~51.6x CPU-only throughput needs ~51.6x
        fewer servers for the same traffic."""
        traffic = gbps(280_000)  # ~100 SmartDS servers' worth
        cpu = plan_fleet("CPU-only", gbps(54.3), traffic)
        smartds = plan_fleet("SmartDS x8", gbps(54.3 * 51.6), traffic)
        assert cpu.servers / smartds.servers == pytest.approx(51.6, rel=0.02)

    def test_cost_ratio(self):
        cpu = plan_fleet("CPU-only", gbps(50), gbps(5000), utilization_target=1.0)
        fast = plan_fleet("SmartDS", gbps(2500), gbps(5000), utilization_target=1.0)
        assert fast.cost_ratio_vs(cpu) == pytest.approx(50.0)

    def test_zero_traffic_zero_servers(self):
        plan = plan_fleet("x", gbps(100), 0.0)
        assert plan.servers == 0
        assert plan.annual_cost_usd == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_fleet("x", 0.0, gbps(100))
        with pytest.raises(ValueError):
            plan_fleet("x", gbps(1), -1.0)
        with pytest.raises(ValueError):
            plan_fleet("x", gbps(1), gbps(1), utilization_target=0.0)

    def test_fleet_plan_fields(self):
        plan = plan_fleet("SmartDS", gbps(100), gbps(1000))
        assert isinstance(plan, FleetPlan)
        assert plan.per_server_gbps == pytest.approx(100.0)
        assert plan.annual_cost_usd > 0


class TestPowerModel:
    def test_power_interpolates_with_utilization(self):
        from repro.analysis import PowerProfile

        profile = PowerProfile("x", host_idle_watts=100, host_active_watts=300, device_watts=50)
        assert profile.power_at(0.0) == pytest.approx(150.0)
        assert profile.power_at(1.0) == pytest.approx(350.0)
        assert profile.power_at(0.5) == pytest.approx(250.0)

    def test_invalid_utilization(self):
        from repro.analysis import PowerProfile

        with pytest.raises(ValueError):
            PowerProfile("x", 100, 200).power_at(1.5)

    def test_smartds_more_efficient_than_cpu_only(self):
        from repro.analysis import watts_per_gbps

        # Fig. 7 peaks: CPU-only ~63.5 Gb/s, SmartDS-1 ~65.4 Gb/s.
        cpu = watts_per_gbps("CPU-only", 63.5)
        smartds = watts_per_gbps("SmartDS-1", 65.4)
        assert smartds < 0.8 * cpu
        # Multi-port amortises the card and host even further.
        smartds6 = watts_per_gbps("SmartDS-6", 396.6)
        assert smartds6 < 0.3 * smartds

    def test_efficiency_table_sorted(self):
        from repro.analysis import efficiency_table

        rows = efficiency_table({"CPU-only": 63.5, "SmartDS-1": 65.4, "BF2": 40.0})
        assert [r[0] for r in rows][0] != "CPU-only"
        efficiencies = [r[2] for r in rows]
        assert efficiencies == sorted(efficiencies)

    def test_unknown_design_rejected(self):
        from repro.analysis import watts_per_gbps

        with pytest.raises(ValueError):
            watts_per_gbps("GPU", 10.0)
        with pytest.raises(ValueError):
            watts_per_gbps("CPU-only", 0.0)

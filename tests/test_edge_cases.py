"""Edge-case tests across small public surfaces."""

import pytest

from repro.net import Message, Payload
from repro.sim import AllOf, AnyOf, BandwidthServer, Resource, SimulationError, Simulator, Store
from repro.units import (
    gBps,
    gbps,
    gib,
    kib,
    mib,
    msec,
    to_gBps,
    to_gbps,
    to_usec,
    usec,
)


class TestUnits:
    def test_gbps_roundtrip(self):
        assert to_gbps(gbps(100.0)) == pytest.approx(100.0)

    def test_gBps_roundtrip(self):
        assert to_gBps(gBps(120.0)) == pytest.approx(120.0)

    def test_gbps_vs_gBps_factor_eight(self):
        assert gBps(1.0) == pytest.approx(8 * gbps(1.0))

    def test_sizes(self):
        assert kib(4) == 4096
        assert mib(1) == 1024 * 1024
        assert gib(1) == 1024**3

    def test_times(self):
        assert usec(1.5) == pytest.approx(1.5e-6)
        assert msec(2.0) == pytest.approx(2e-3)
        assert to_usec(usec(7)) == pytest.approx(7.0)


class TestConditionFailures:
    def test_all_of_fails_fast(self):
        sim = Simulator()
        slow = sim.timeout(10.0)
        boom = sim.event()
        caught = []

        def body():
            try:
                yield AllOf(sim, [slow, boom])
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        sim.process(body())
        boom.fail(ValueError("dead"))
        sim.run()
        assert caught and caught[0][0] == 0.0

    def test_any_of_with_failure_first(self):
        sim = Simulator()
        boom = sim.event()
        caught = []

        def body():
            try:
                yield AnyOf(sim, [sim.timeout(5.0), boom])
            except ValueError:
                caught.append(sim.now)

        sim.process(body())
        boom.fail(ValueError("dead"))
        sim.run()
        assert caught == [0.0]

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()
        fired = []

        def body():
            yield AllOf(sim, [])
            fired.append(sim.now)

        sim.process(body())
        sim.run()
        assert fired == [0.0]


class TestKernelMisuse:
    def test_step_on_empty_queue(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_run_until_past_deadline(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_run_until_never_fired_event(self):
        sim = Simulator()
        orphan = sim.event()
        sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.run(until=orphan)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_value_of_pending_event(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value


class TestResourceMisuse:
    def test_release_foreign_request(self):
        sim = Simulator()
        a = Resource(sim, 1, name="a")
        b = Resource(sim, 1, name="b")
        request = a.request()
        with pytest.raises(SimulationError):
            b.release(request)

    def test_double_release(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        request = resource.request()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_store_capacity_validation(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_bandwidth_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BandwidthServer(sim, rate=0.0)
        with pytest.raises(SimulationError):
            BandwidthServer(sim, rate=1.0, lanes=0)
        pipe = BandwidthServer(sim, rate=1.0)
        with pytest.raises(SimulationError):
            pipe.transfer(-1)

    def test_zero_byte_transfer_completes(self):
        sim = Simulator()
        pipe = BandwidthServer(sim, rate=100.0)
        done = []

        def body():
            yield pipe.transfer(0)
            done.append(sim.now)

        sim.process(body())
        sim.run()
        assert done == [0.0]


class TestMessageEdges:
    def test_negative_header_rejected(self):
        with pytest.raises(ValueError):
            Message("x", "a", "b", header_size=-1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Payload(size=-1)

    def test_synthetic_decompress_without_original_size(self):
        from repro.net.message import decompress_payload

        orphan = Payload(size=100, is_compressed=True)
        with pytest.raises(ValueError):
            decompress_payload(orphan)

    def test_reply_preserves_header_size(self):
        msg = Message("write_request", "a", "b", header_size=128)
        assert msg.reply("write_reply").header_size == 128


class TestDriverEdges:
    def test_result_before_any_completion_raises(self):
        from repro.middletier import CpuOnlyMiddleTier, Testbed
        from repro.workloads import ClientDriver, WriteRequestFactory

        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=1)
        driver = ClientDriver(sim, tier, WriteRequestFactory(testbed.platform), concurrency=1)
        with pytest.raises(RuntimeError):
            driver.result()

    def test_driver_repr_objects_exist(self):
        # Representations used in debugging must not raise.
        sim = Simulator()
        assert "Simulator" in repr(sim)
        assert "Resource" in repr(Resource(sim, 2))

"""Tests for the simulation event tracer."""

import pytest

from repro.sim import Simulator, Tracer


def run_small_sim(sim):
    def worker(tag):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    for tag in range(3):
        sim.process(worker(tag))
    sim.run()


class TestTracer:
    def test_records_processed_events(self):
        sim = Simulator()
        tracer = Tracer(sim)
        run_small_sim(sim)
        assert tracer.events_seen > 0
        times = [when for when, _name in tracer.records]
        assert times == sorted(times)

    def test_name_filter(self):
        sim = Simulator()
        tracer = Tracer(sim, name_filter="timeout")
        run_small_sim(sim)
        assert tracer.events_seen > 0
        assert all("timeout" in name for _when, name in tracer.records)

    def test_limit_keeps_most_recent(self):
        sim = Simulator()
        tracer = Tracer(sim, limit=5)
        run_small_sim(sim)
        assert len(tracer.records) <= 5
        # The retained records are the latest ones.
        assert tracer.records[-1][0] == 3.0

    def test_stop_detaches(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.stop()
        run_small_sim(sim)
        assert tracer.events_seen == 0
        assert sim._tracers == []

    def test_between_window(self):
        sim = Simulator()
        tracer = Tracer(sim)
        run_small_sim(sim)
        window = tracer.between(0.5, 1.5)
        assert window
        assert all(0.5 <= when <= 1.5 for when, _ in window)

    def test_format_output(self):
        sim = Simulator()
        tracer = Tracer(sim)
        run_small_sim(sim)
        text = tracer.format(last=4)
        assert "us" in text
        assert len(text.splitlines()) <= 4

    def test_format_empty(self):
        sim = Simulator()
        tracer = Tracer(sim)
        assert "no events" in tracer.format()

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            Tracer(Simulator(), limit=0)

    def test_stopped_tracer_in_list_records_nothing(self):
        # _active is authoritative: even re-appended by hand, a stopped
        # tracer must stay silent until start() re-arms it.
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.stop()
        sim._tracers.append(tracer)
        run_small_sim(sim)
        assert tracer.events_seen == 0

    def test_start_resumes_with_a_gap(self):
        sim = Simulator()
        tracer = Tracer(sim)
        run_small_sim(sim)
        seen_before = tracer.events_seen
        assert seen_before > 0
        tracer.stop()
        run_small_sim(sim)
        assert tracer.events_seen == seen_before  # silent while stopped
        tracer.start()
        assert sim._tracers == [tracer]
        run_small_sim(sim)
        assert tracer.events_seen > seen_before  # resumed, records kept

    def test_stop_and_start_are_idempotent(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.stop()
        tracer.stop()
        assert sim._tracers == []
        tracer.start()
        tracer.start()
        assert sim._tracers == [tracer]

    def test_no_tracer_zero_overhead_path(self):
        # Just exercises the untraced fast path for completeness.
        sim = Simulator()
        run_small_sim(sim)
        assert sim._tracers == []

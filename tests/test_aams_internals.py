"""Unit tests of AAMS internals: Split tables, Assemble, header cache."""

import pytest

from repro.core import SmartDsApi, SmartDsDevice
from repro.core.aams import SplitDescriptor
from repro.net import Message, NetworkPort, Payload, RoceEndpoint
from repro.params import PlatformSpec
from repro.sim import Simulator


def plain_endpoint(sim, name):
    platform = PlatformSpec()
    port = NetworkPort(sim, rate=platform.network.port_rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=platform.network)


def connected_device(sim, n_ports=1):
    device = SmartDsDevice(sim, n_ports=n_ports)
    api = SmartDsApi(device)
    vm = plain_endpoint(sim, "vm")
    qp = vm.connect(device.instance(0).endpoint)
    return device, api, vm, qp


class TestSplitModuleTables:
    def test_descriptors_match_fifo_per_qp(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        buffers = []
        events = []
        for _ in range(3):
            h_buf = api.host_alloc(64)
            d_buf = api.dev_alloc(4608)
            buffers.append(d_buf)
            events.append(api.dev_mixed_recv(qp.peer, h_buf, 64, d_buf, 4608))

        def sender():
            for i in range(3):
                yield qp.send(
                    Message(
                        "write_request", "vm", "t",
                        payload=Payload.synthetic(4096, 2.0),
                        header={"i": i},
                    )
                )

        sim.process(sender())
        sim.run()
        # FIFO: descriptor k served message k.
        for i, event in enumerate(events):
            assert event.completed
            assert event.message.header["i"] == i
            assert buffers[i].payload is event.message.payload

    def test_fresh_qp_never_inherits_a_dead_qps_table(self):
        """Descriptor tables are keyed by the QueuePair object, not id(qp).

        Regression: ``SplitModule._tables`` used to be keyed by
        ``id(qp)``. When a queue pair was garbage collected, CPython
        readily hands the same address to the next allocation, so a
        brand-new QP could inherit the dead QP's table — including any
        descriptors (and blocked ``pop`` getters) still queued on it.
        """
        from repro.net.roce import QueuePair

        sim = Simulator()
        device = SmartDsDevice(sim)
        split = device.instance(0).split
        vm = plain_endpoint(sim, "vm")
        dev_ep = device.instance(0).endpoint

        # Control: confirm the premise — dropping a QueuePair and
        # allocating another really does reuse object ids here, so an
        # id-keyed table *would* alias.
        seen, id_reused = set(), False
        for _ in range(200):
            probe = QueuePair(vm, dev_ep)
            if id(probe) in seen:
                id_reused = True
                break
            seen.add(id(probe))
        assert id_reused

        # The actual property: every distinct QP gets a distinct, fresh
        # table, however many dead QPs shared its address.
        tables = []
        for _ in range(200):
            qp = QueuePair(vm, dev_ep)
            table = split._table(qp)
            assert all(table is not earlier for earlier in tables)
            assert len(table) == 0
            tables.append(table)

        # And the module does not pin dead QPs: the weak-keyed mapping
        # evicts each dropped QP's entry instead of growing forever.
        del qp
        assert len(split._tables) <= 1

    @pytest.mark.drain_audit_exempt  # sender "a" is deliberately left waiting
    def test_separate_qps_have_separate_tables(self):
        sim = Simulator()
        device = SmartDsDevice(sim)
        api = SmartDsApi(device)
        vm_a = plain_endpoint(sim, "vmA")
        vm_b = plain_endpoint(sim, "vmB")
        qp_a = vm_a.connect(device.instance(0).endpoint)
        qp_b = vm_b.connect(device.instance(0).endpoint)
        # Post a descriptor only for qp_b; a message on qp_a must wait,
        # not steal qp_b's descriptor.
        h_buf = api.host_alloc(64)
        d_buf = api.dev_alloc(4608)
        event_b = api.dev_mixed_recv(qp_b.peer, h_buf, 64, d_buf, 4608)
        done = {}

        def sender(qp, tag):
            yield qp.send(Message("write_request", tag, "t", payload=Payload.synthetic(4096, 2.0)))
            done[tag] = sim.now

        sim.process(sender(qp_a, "a"))
        sim.process(sender(qp_b, "b"))
        sim.run(until=0.01)
        assert "b" in done
        assert "a" not in done  # still waiting for a descriptor
        assert event_b.completed

    def test_split_completion_carries_header_content(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        h_buf = api.host_alloc(64)
        d_buf = api.dev_alloc(4608)
        event = api.dev_mixed_recv(qp.peer, h_buf, 64, d_buf, 4608)

        def sender():
            yield qp.send(
                Message(
                    "write_request", "vm", "t",
                    payload=Payload.synthetic(4096, 2.0),
                    header={"vm_id": "vm7", "block_id": 42},
                )
            )

        sim.process(sender())
        sim.run()
        assert h_buf.content["vm_id"] == "vm7"
        assert h_buf.content["block_id"] == 42
        assert event.size == 4096

    def test_descriptor_post_validation(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        split = device.instance(0).split
        with pytest.raises(ValueError):
            split.post(
                SplitDescriptor(
                    qp=qp.peer,
                    h_buf=api.host_alloc(16),
                    h_size=64,  # exceeds the host buffer
                    d_buf=api.dev_alloc(4608),
                    d_size=4608,
                    event=sim.event(),
                )
            )


class TestAssembleHeaderCache:
    def _egress_bytes(self, device):
        return device.pcie.h2d_meter.total_bytes

    def test_replica_fanout_fetches_header_once(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)
        payload = Payload.synthetic(2048, 1.0, )

        def sender():
            for _replica in range(3):
                message = Message(
                    "storage_write", "t", "sink",
                    header_size=64,
                    payload=payload,
                    header={"chunk_id": 5, "block_id": 9},
                )
                yield out_qp.send(message)

        sim.process(sender())
        sim.run()
        # One 64 B header fetch despite three sends.
        assert self._egress_bytes(device) == 64

    def test_distinct_blocks_fetch_their_own_headers(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)

        def sender():
            for block_id in range(3):
                yield out_qp.send(
                    Message(
                        "storage_write", "t", "sink",
                        header_size=64,
                        payload=Payload.synthetic(1024, 1.0),
                        header={"chunk_id": 0, "block_id": block_id},
                    )
                )

        sim.process(sender())
        sim.run()
        assert self._egress_bytes(device) == 3 * 64

    def test_unkeyed_messages_always_fetch(self):
        """Messages without a block key (no chunk_id) can't be cached."""
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)

        def sender():
            for _ in range(2):
                yield out_qp.send(Message("control", "t", "sink", header_size=64))

        sim.process(sender())
        sim.run()
        assert self._egress_bytes(device) == 2 * 64

    def test_cache_evicts_lru_at_limit(self):
        """A full cache evicts its oldest entry, not the whole set.

        Regression: the cache used to be a plain ``set`` that was cleared
        wholesale at the limit, throwing away thousands of hot entries
        because one cold one arrived.
        """
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        datapath = device.instance(0).datapath
        # Fill the cache artificially: entry 0 is the LRU victim.
        for i in range(datapath.HEADER_CACHE_LIMIT):
            datapath._header_cache[("storage_write", 0, i)] = {
                "chunk_id": 0, "block_id": i,
            }
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)

        def sender():
            yield out_qp.send(
                Message(
                    "storage_write", "t", "sink",
                    header_size=64,
                    payload=Payload.synthetic(512, 1.0),
                    header={"chunk_id": 1, "block_id": 10**6},
                )
            )

        sim.process(sender())
        sim.run()
        cache = datapath._header_cache
        assert len(cache) == datapath.HEADER_CACHE_LIMIT  # bounded, not cleared
        assert ("storage_write", 1, 10**6) in cache  # new entry installed
        assert ("storage_write", 0, 0) not in cache  # only the LRU left
        assert ("storage_write", 0, 1) in cache  # ... everything else survived

    def test_cache_hit_refreshes_recency(self):
        """Re-sending a cached header protects it from LRU eviction."""
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        datapath = device.instance(0).datapath
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)

        def block_write(block_id):
            return Message(
                "storage_write", "t", "sink",
                header_size=64,
                payload=Payload.synthetic(512, 1.0),
                header={"chunk_id": 0, "block_id": block_id},
            )

        def sender():
            yield out_qp.send(block_write(1))
            yield out_qp.send(block_write(2))
            yield out_qp.send(block_write(1))  # hit: 1 becomes most recent

        sim.process(sender())
        sim.run()
        cache = datapath._header_cache
        assert next(iter(cache)) == ("storage_write", 0, 2)  # 2 is now LRU

    def test_cache_invalidated_when_header_content_changes(self):
        """Same (kind, chunk, block) with new header bytes must re-fetch.

        Regression: the cache used to remember only the *key*, so a
        rewritten header for the same block was served from cache — the
        wire would carry the stale header. Now the entry stores the
        content and a mismatch forces a fresh PCIe header fetch.
        """
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)
        sink = plain_endpoint(sim, "sink")
        out_qp = device.instance(0).endpoint.connect(sink)

        def write(version):
            return Message(
                "storage_write", "t", "sink",
                header_size=64,
                payload=Payload.synthetic(512, 1.0),
                header={"chunk_id": 0, "block_id": 7, "version": version},
            )

        def sender():
            yield out_qp.send(write(1))  # miss: fetch
            yield out_qp.send(write(1))  # hit: no fetch
            yield out_qp.send(write(2))  # same key, new content: must fetch
            yield out_qp.send(write(2))  # hit again

        sim.process(sender())
        sim.run()
        assert self._egress_bytes(device) == 2 * 64


class TestHeaderOnlyCqePath:
    def test_ack_costs_a_cqe_not_a_frame(self):
        sim = Simulator()
        device, api, vm, qp = connected_device(sim)

        def sender():
            yield qp.send(Message("storage_ack", "vm", "t", header_size=64))

        sim.process(sender())
        sim.run()
        assert device.pcie.d2h_meter.total_bytes == device.spec.notify_bytes

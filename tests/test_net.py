"""Unit tests for messages, ports, and the RoCE transport."""

import pytest

from repro.hostmodel import DdioLlc, MemorySubsystem
from repro.net import (
    Message,
    NetworkPort,
    Payload,
    RoceEndpoint,
    compress_payload,
    decompress_payload,
)
from repro.net.nic import HostNic
from repro.params import NetworkSpec
from repro.sim import Simulator
from repro.units import gbps, usec


def make_endpoint(sim, name, rate=gbps(100), spec=None):
    port = NetworkPort(sim, rate=rate, name=f"{name}.port")
    return RoceEndpoint(sim, port, name, spec=spec or NetworkSpec())


class TestPayload:
    def test_functional_compress_roundtrip(self):
        payload = Payload.from_bytes(b"block data " * 400)
        compressed = compress_payload(payload)
        assert compressed.is_compressed
        assert compressed.size < payload.size
        restored = decompress_payload(compressed)
        assert restored.data == payload.data

    def test_synthetic_compress_uses_ratio(self):
        payload = Payload.synthetic(4096, ratio=2.0)
        compressed = compress_payload(payload)
        assert compressed.size == 2048
        assert compressed.original_size == 4096
        restored = decompress_payload(compressed)
        assert restored.size == 4096

    def test_double_compress_rejected(self):
        compressed = compress_payload(Payload.synthetic(4096, 2.0))
        with pytest.raises(ValueError):
            compress_payload(compressed)

    def test_decompress_uncompressed_rejected(self):
        with pytest.raises(ValueError):
            decompress_payload(Payload.synthetic(4096, 2.0))

    def test_size_data_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Payload(size=10, data=b"abc")

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            Payload(size=10, ratio=0.0)


class TestMessage:
    def test_size_sums_header_and_payload(self):
        msg = Message("write_request", "a", "b", header_size=64, payload=Payload.synthetic(4096, 2.0))
        assert msg.size == 4160
        assert msg.payload_size == 4096

    def test_header_only_message(self):
        msg = Message("storage_ack", "a", "b", header_size=64)
        assert msg.size == 64
        assert msg.payload_size == 0

    def test_reply_swaps_addresses_and_links_request(self):
        msg = Message("write_request", "vm", "tier")
        reply = msg.reply("write_reply", status="ok")
        assert reply.src == "tier" and reply.dst == "vm"
        assert reply.header["in_reply_to"] == msg.request_id
        assert reply.header["status"] == "ok"

    def test_request_ids_unique(self):
        a = Message("x", "a", "b")
        b = Message("x", "a", "b")
        assert a.request_id != b.request_id


class TestRoceTransport:
    def test_send_delivers_message(self):
        sim = Simulator()
        left = make_endpoint(sim, "left")
        right = make_endpoint(sim, "right")
        qp = left.connect(right)
        got = []

        def sender():
            yield qp.send(Message("ping", "left", "right"))

        def receiver():
            msg = yield qp.peer.recv()
            got.append((msg.kind, sim.now))

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got and got[0][0] == "ping"

    def test_delivery_in_order_per_qp(self):
        sim = Simulator()
        left = make_endpoint(sim, "left")
        right = make_endpoint(sim, "right")
        qp = left.connect(right)
        got = []

        def sender():
            for i in range(5):
                yield qp.send(Message("seq", "left", "right", header={"i": i}))

        def receiver():
            for _ in range(5):
                msg = yield qp.peer.recv()
                got.append(msg.header["i"])

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_latency_includes_serialization_and_switch(self):
        sim = Simulator()
        spec = NetworkSpec(port_rate=gbps(100), switch_latency=usec(1.5), roce_overhead_bytes=0)
        left = make_endpoint(sim, "left", spec=spec)
        right = make_endpoint(sim, "right", spec=spec)
        qp = left.connect(right)
        done = []

        def sender():
            yield qp.send(Message("data", "l", "r", header_size=0, payload=Payload.synthetic(12500, 1.0)))
            done.append(sim.now)

        sim.process(sender())
        sim.run()
        # 12500 B at 12.5 GB/s = 1 us serialization per hop, + 1.5 us switch.
        assert done[0] == pytest.approx(usec(1.0 + 1.5 + 1.0), rel=0.01)

    def test_port_contention_backpressures_senders(self):
        sim = Simulator()
        spec = NetworkSpec(port_rate=1000.0, switch_latency=0.0, roce_overhead_bytes=0)
        receiver = make_endpoint(sim, "rx", rate=1000.0, spec=spec)
        finish = []

        def sender(name):
            endpoint = make_endpoint(sim, name, rate=1000.0, spec=spec)
            qp = endpoint.connect(receiver)
            yield qp.send(Message("data", name, "rx", header_size=0, payload=Payload.synthetic(1000, 1.0)))
            finish.append(sim.now)

        sim.process(sender("a"))
        sim.process(sender("b"))
        sim.run()
        # Both serialize at their own tx in parallel (1 s), but the shared
        # rx port serializes them: second completes ~1 s after the first.
        assert finish[0] == pytest.approx(2.0, rel=0.01)
        assert finish[1] == pytest.approx(3.0, rel=0.01)

    def test_meters_count_wire_bytes(self):
        sim = Simulator()
        spec = NetworkSpec(roce_overhead_bytes=60)
        left = make_endpoint(sim, "left", spec=spec)
        right = make_endpoint(sim, "right", spec=spec)
        qp = left.connect(right)

        def sender():
            yield qp.send(Message("data", "l", "r", header_size=64, payload=Payload.synthetic(4096, 1.0)))

        sim.process(sender())
        sim.run()
        assert left.port.tx_meter.total_bytes == 4096 + 64 + 60
        assert right.port.rx_meter.total_bytes == 4096 + 64 + 60

    def test_cross_simulator_connect_rejected(self):
        sim_a, sim_b = Simulator(), Simulator()
        left = make_endpoint(sim_a, "left")
        right = make_endpoint(sim_b, "right")
        with pytest.raises(Exception):
            left.connect(right)


class TestHostNic:
    def test_ingress_charges_pcie_and_memory(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        llc = DdioLlc()
        nic = HostNic(sim, "host", memory, llc)
        client = make_endpoint(sim, "client")
        qp = client.connect(nic.endpoint)
        got = []

        def sender():
            yield qp.send(Message("w", "c", "h", payload=Payload.synthetic(4096, 2.0)))

        def receiver():
            msg = yield qp.peer.recv()
            got.append(msg)

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert got
        assert nic.pcie.d2h_meter.total_bytes >= 4160  # DMA write of the message
        # The 400 MB intermediate buffer defeats DDIO: DRAM sees the write.
        assert memory.write_meter.total_bytes >= 4160

    def test_egress_charges_memory_read_and_pcie(self):
        sim = Simulator()
        memory = MemorySubsystem.for_host(sim)
        llc = DdioLlc()
        nic = HostNic(sim, "host", memory, llc)
        sink = make_endpoint(sim, "sink")
        qp = nic.endpoint.connect(sink)

        def sender():
            yield qp.send(Message("w", "h", "s", payload=Payload.synthetic(4096, 2.0)))

        sim.process(sender())
        sim.run()
        assert memory.read_meter.total_bytes >= 4160
        assert nic.pcie.h2d_meter.total_bytes >= 4160

"""Integration tests for the middle-tier designs and shared machinery."""

import pytest

from repro.core import SmartDsMiddleTier
from repro.middletier import (
    AcceleratorMiddleTier,
    AddressMapper,
    BlueField2MiddleTier,
    CpuOnlyMiddleTier,
    NaiveFpgaMiddleTier,
    Testbed,
)
from repro.params import StorageSpec
from repro.sim import Simulator
from repro.units import to_gbps
from repro.workloads import ClientDriver, WriteRequestFactory

ALL_DESIGNS = [
    (CpuOnlyMiddleTier, {"n_workers": 4}),
    (AcceleratorMiddleTier, {"n_workers": 2}),
    (BlueField2MiddleTier, {"n_workers": 2}),
    (NaiveFpgaMiddleTier, {"n_workers": 2}),
    (SmartDsMiddleTier, {"n_ports": 1}),
]


def run_writes(design_cls, kwargs, n_requests=300, concurrency=16, **factory_kw):
    sim = Simulator()
    testbed = Testbed(sim)
    tier = design_cls(sim, testbed, **kwargs)
    factory = WriteRequestFactory(testbed.platform, seed=3, **factory_kw)
    driver = ClientDriver(sim, tier, factory, concurrency=concurrency)
    done = driver.run(n_requests)
    result = sim.run(until=done)
    return sim, testbed, tier, result


class TestAddressMapper:
    def test_resolve_basic(self):
        mapper = AddressMapper()
        address = mapper.resolve(0)
        assert address.segment_id == 0 and address.chunk_id == 0 and address.chunk_offset == 0

    def test_chunk_boundaries(self):
        mapper = AddressMapper()
        per_chunk = mapper.blocks_per_chunk
        assert mapper.resolve(per_chunk - 1).chunk_id == 0
        assert mapper.resolve(per_chunk).chunk_id == 1

    def test_segment_boundaries(self):
        mapper = AddressMapper()
        per_segment = mapper.blocks_per_chunk * mapper.chunks_per_segment
        assert mapper.resolve(per_segment - 1).segment_id == 0
        assert mapper.resolve(per_segment).segment_id == 1

    def test_sizes_match_paper(self):
        mapper = AddressMapper()
        assert mapper.blocks_per_chunk == 64 * 1024 * 1024 // 4096
        assert mapper.chunks_per_segment == 32 * 1024 // 64

    def test_lbas_of_chunk(self):
        mapper = AddressMapper()
        lbas = mapper.lbas_of_chunk(2)
        assert lbas[0] == 2 * mapper.blocks_per_chunk
        assert len(lbas) == mapper.blocks_per_chunk

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            AddressMapper().resolve(-1)
        with pytest.raises(ValueError):
            AddressMapper(block_size=0)
        with pytest.raises(ValueError):
            AddressMapper(StorageSpec(chunk_bytes=1000), block_size=4096)


class TestAllDesignsServeWrites:
    @pytest.mark.parametrize("design_cls,kwargs", ALL_DESIGNS)
    def test_writes_complete_and_replicate(self, design_cls, kwargs):
        sim, testbed, tier, result = run_writes(design_cls, kwargs)
        assert result.requests > 0
        assert tier.requests_completed.value > 0
        # Every completed write hit exactly `replication` storage servers.
        total_stored = sum(s.writes_served.value for s in testbed.storage_servers)
        assert total_stored == tier.requests_completed.value * 3

    @pytest.mark.parametrize("design_cls,kwargs", ALL_DESIGNS)
    def test_blocks_are_compressed_on_disk(self, design_cls, kwargs):
        sim, testbed, tier, result = run_writes(design_cls, kwargs)
        for server in testbed.storage_servers:
            for chunk_id in server.store.chunk_ids():
                for record in server.store.live_blocks(chunk_id):
                    assert record.meta["is_compressed"]
                    assert record.size < 4096

    @pytest.mark.parametrize("design_cls,kwargs", ALL_DESIGNS)
    def test_latency_sensitive_writes_skip_compression(self, design_cls, kwargs):
        sim, testbed, tier, result = run_writes(
            design_cls, kwargs, latency_sensitive_fraction=1.0
        )
        for server in testbed.storage_servers:
            for chunk_id in server.store.chunk_ids():
                for record in server.store.live_blocks(chunk_id):
                    assert not record.meta["is_compressed"]
                    assert record.size == 4096


class TestDesignSignatures:
    def test_smartds_uses_no_host_memory(self):
        sim, testbed, tier, result = run_writes(SmartDsMiddleTier, {"n_ports": 1})
        assert tier.memory.total_bytes == 0

    def test_cpu_only_uses_host_memory_both_ways(self):
        sim, testbed, tier, result = run_writes(CpuOnlyMiddleTier, {"n_workers": 4})
        assert tier.memory.read_meter.total_bytes > 0
        assert tier.memory.write_meter.total_bytes > 0

    def test_acc_with_ddio_avoids_memory_reads(self):
        sim, testbed, tier, result = run_writes(
            AcceleratorMiddleTier, {"n_workers": 2, "ddio_enabled": True}
        )
        assert tier.memory.read_meter.total_bytes == 0
        assert tier.memory.write_meter.total_bytes > 0

    def test_acc_without_ddio_reads_memory(self):
        sim, testbed, tier, result = run_writes(
            AcceleratorMiddleTier, {"n_workers": 2, "ddio_enabled": False}
        )
        assert tier.memory.read_meter.total_bytes > 0

    def test_bf2_throughput_engine_bound(self):
        sim, testbed, tier, result = run_writes(
            BlueField2MiddleTier, {"n_workers": 4}, n_requests=2000, concurrency=128
        )
        assert to_gbps(result.throughput) < 45  # ~40 Gb/s engine

    def test_smartds_pcie_traffic_is_headers_only(self):
        sim, testbed, tier, result = run_writes(SmartDsMiddleTier, {"n_ports": 1})
        payload_bytes = tier.payload_bytes_served.value
        # All PCIe traffic together is far smaller than the payload volume.
        pcie_bytes = (
            tier.device.pcie.h2d_meter.total_bytes + tier.device.pcie.d2h_meter.total_bytes
        )
        assert pcie_bytes < 0.2 * payload_bytes

    def test_naive_fpga_marked_inflexible(self):
        assert NaiveFpgaMiddleTier.flexible is False
        assert SmartDsMiddleTier.flexible is True
        assert CpuOnlyMiddleTier.flexible is True

    def test_device_memory_freed_after_run(self):
        sim, testbed, tier, result = run_writes(SmartDsMiddleTier, {"n_ports": 1})
        # Only the posted recv window remains allocated.
        window_bytes = tier._recv_window * (testbed.platform.workload.block_size + 512)
        assert tier.device.allocator.allocated <= window_bytes + 4608


class TestReadPath:
    @pytest.mark.parametrize(
        "design_cls,kwargs",
        [
            (CpuOnlyMiddleTier, {"n_workers": 4}),
            (AcceleratorMiddleTier, {"n_workers": 2}),
            (SmartDsMiddleTier, {"n_ports": 1}),
        ],
    )
    def test_read_after_write_returns_block(self, design_cls, kwargs):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = design_cls(sim, testbed, **kwargs)
        factory = WriteRequestFactory(testbed.platform, seed=5)
        driver = ClientDriver(sim, tier, factory, concurrency=4)
        done = driver.run(20)
        sim.run(until=done)

        replies = []

        def reader():
            read = factory.make_read(lba=3)
            event = sim.event()
            driver._reply_events[read.request_id] = event
            yield driver.qp.send(read)
            reply = yield event
            replies.append(reply)

        sim.process(reader())
        sim.run()
        assert replies and replies[0].header["status"] == "ok"
        assert replies[0].payload.size == 4096
        assert not replies[0].payload.is_compressed

    def test_read_of_unknown_block_not_found(self):
        sim = Simulator()
        testbed = Testbed(sim)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        factory = WriteRequestFactory(testbed.platform, seed=5)
        driver = ClientDriver(sim, tier, factory, concurrency=2)
        done = driver.run(4)
        sim.run(until=done)
        replies = []

        def reader():
            read = factory.make_read(lba=999_999)
            event = sim.event()
            driver._reply_events[read.request_id] = event
            yield driver.qp.send(read)
            replies.append((yield event))

        sim.process(reader())
        sim.run()
        assert replies[0].header["status"] == "not_found"


class TestFailover:
    def test_write_survives_storage_failure(self):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        factory = WriteRequestFactory(testbed.platform, seed=7)
        driver = ClientDriver(sim, tier, factory, concurrency=4)

        def killer():
            yield sim.timeout(0.0001)
            testbed.storage_servers[0].fail()

        sim.process(killer())
        done = driver.run(100)
        result = sim.run(until=done)
        assert result.requests > 0
        # Every write is durable on three *healthy* replicas.
        assert tier.requests_completed.value == 100
        assert tier.failovers.value > 0

    def test_worker_validation(self):
        sim = Simulator()
        testbed = Testbed(sim)
        with pytest.raises(ValueError):
            CpuOnlyMiddleTier(sim, testbed, n_workers=0)
        with pytest.raises(ValueError):
            CpuOnlyMiddleTier(sim, testbed, n_workers=49)
        with pytest.raises(ValueError):
            BlueField2MiddleTier(sim, testbed, n_workers=9)

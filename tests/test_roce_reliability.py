"""Reliability tests: lossy fabric, retransmission, in-order delivery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Datapath, Message, NetworkPort, Payload, RoceEndpoint
from repro.params import NetworkSpec
from repro.sim import Simulator
from repro.units import gbps, usec


def make_pair(sim, loss_rate=0.0, seed=1):
    spec = NetworkSpec(loss_rate=loss_rate, retransmit_timeout=usec(20))
    left = RoceEndpoint(
        sim, NetworkPort(sim, gbps(100), "l.port"), "left", spec=spec, loss_seed=seed
    )
    right = RoceEndpoint(
        sim, NetworkPort(sim, gbps(100), "r.port"), "right", spec=spec, loss_seed=seed + 1
    )
    return left.connect(right)


def run_transfer(loss_rate, n_messages, seed=1):
    sim = Simulator()
    qp = make_pair(sim, loss_rate=loss_rate, seed=seed)
    got = []

    def sender():
        sends = [
            qp.send(
                Message(
                    "data", "l", "r", header={"i": i}, payload=Payload.synthetic(4096, 2.0)
                )
            )
            for i in range(n_messages)
        ]
        yield sim.all_of(sends)

    def receiver():
        for _ in range(n_messages):
            message = yield qp.peer.recv()
            got.append(message.header["i"])

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    return sim, qp, got


class TestLossyFabric:
    def test_all_messages_delivered_under_loss(self):
        _sim, qp, got = run_transfer(loss_rate=0.3, n_messages=40)
        assert sorted(got) == list(range(40))

    def test_delivery_stays_in_order_under_loss(self):
        _sim, qp, got = run_transfer(loss_rate=0.4, n_messages=40)
        assert got == list(range(40))

    def test_retransmissions_counted(self):
        sim = Simulator()
        qp = make_pair(sim, loss_rate=0.5, seed=3)

        def sender():
            sends = [qp.send(Message("d", "l", "r")) for _ in range(30)]
            yield sim.all_of(sends)

        def receiver():
            for _ in range(30):
                yield qp.peer.recv()

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert qp.endpoint.retransmissions.value > 0

    def test_no_loss_means_no_retransmissions(self):
        sim, qp, got = run_transfer(loss_rate=0.0, n_messages=20)
        assert qp.endpoint.retransmissions.value == 0
        assert got == list(range(20))

    def test_loss_slows_completion(self):
        clean_sim, _, _ = run_transfer(loss_rate=0.0, n_messages=30)
        lossy_sim, _, _ = run_transfer(loss_rate=0.5, n_messages=30)
        assert lossy_sim.now > clean_sim.now

    def test_concurrent_senders_each_delivered_once(self):
        sim = Simulator()
        qp = make_pair(sim, loss_rate=0.25, seed=9)
        got = []
        n_streams, per_stream = 8, 5

        def stream(tag):
            for i in range(per_stream):
                yield qp.send(Message("d", "l", "r", header={"id": (tag, i)}))

        def receiver():
            for _ in range(n_streams * per_stream):
                message = yield qp.peer.recv()
                got.append(message.header["id"])

        for tag in range(n_streams):
            sim.process(stream(tag))
        sim.process(receiver())
        sim.run()
        assert len(got) == len(set(got)) == n_streams * per_stream


class _RecordingDatapath(Datapath):
    """Consumes every message, recording the order ingress ran in."""

    def __init__(self):
        self.ingress_order = []

    def ingress(self, message, qp):
        self.ingress_order.append(message.header["i"])
        return True
        yield  # pragma: no cover - makes this a generator function


class TestPsnOrderedIngress:
    def test_ingress_side_effects_follow_psn_order_after_loss(self):
        """Receive-datapath side effects must run strictly in PSN order.

        Regression: ingress used to run as soon as a frame landed, so
        when message 0's frame was lost, message 1 arrived first and its
        ingress ran first — on SmartDS that means message 1 consumed the
        split descriptor posted for message 0, corrupting every request
        behind a retransmission. Now ingress is held behind the in-order
        gate, exactly like the processing pipeline of a real RC QP.
        """
        sim = Simulator()
        qp = make_pair(sim, loss_rate=0.0)
        datapath = _RecordingDatapath()
        qp.remote.datapath = datapath

        # Deterministically drop message 0's first transmission attempt
        # and nothing else.
        drops = iter([True])
        qp.endpoint._frame_lost = lambda: next(drops, False)

        def sender():
            sends = [
                qp.send(Message("data", "l", "r", header={"i": i})) for i in range(3)
            ]
            yield sim.all_of(sends)

        sim.process(sender())
        sim.run()
        assert qp.endpoint.retransmissions.value == 1
        assert datapath.ingress_order == [0, 1, 2]

    def test_recv_buffer_order_matches_psn_under_burst_loss(self):
        """A FaultPlan loss burst delays but never reorders delivery."""
        from repro.sim.debug import FaultPlan

        sim = Simulator()
        spec = NetworkSpec(retransmit_timeout=usec(20))
        plan = FaultPlan(seed=5)
        plan.add_loss_burst(start=0.0, duration=usec(10))
        left = RoceEndpoint(
            sim,
            NetworkPort(sim, gbps(100), "l.port"),
            "left",
            spec=spec,
            fault_plan=plan,
        )
        right = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "r.port"), "right", spec=spec)
        qp = left.connect(right)
        got = []

        def sender():
            sends = [qp.send(Message("d", "l", "r", header={"i": i})) for i in range(10)]
            yield sim.all_of(sends)

        def receiver():
            for _ in range(10):
                got.append((yield qp.peer.recv()).header["i"])

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        assert left.retransmissions.value > 0  # the burst really dropped frames
        assert got == list(range(10))


@settings(max_examples=25, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    n=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reliability_property(loss, n, seed):
    """Exactly-once, in-order delivery holds for any loss rate and count."""
    _sim, _qp, got = run_transfer(loss_rate=loss, n_messages=n, seed=seed)
    assert got == list(range(n))

"""End-to-end failure recovery: retry policies, read fail-over, and
graceful degradation under device-memory pressure.

The chaos-flavoured tests honour ``REPRO_FAULT_SEED`` so CI can replay
them across a small matrix of fault seeds; every schedule here is
deterministic given that seed (see ``docs/robustness.md``).
"""

import math
import os
import random

import pytest

from repro.cache import HotBlockCache
from repro.core import SmartDsMiddleTier
from repro.core.device import DeviceMemoryAllocator
from repro.middletier import (
    CpuOnlyMiddleTier,
    HeartbeatMonitor,
    ResponseMatcher,
    RetryPolicy,
    Testbed,
)
from repro.net import Message, NetworkPort, RoceEndpoint
from repro.net.message import Payload
from repro.params import CacheSpec, NetworkSpec, RecoverySpec
from repro.sim import Simulator
from repro.units import gbps, kib, msec, usec
from repro.workloads import ClientDriver, WriteRequestFactory

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "11"))


class TestRetryPolicy:
    def test_attempt_one_never_waits(self):
        assert RetryPolicy().backoff_before(1, token=123) == 0.0

    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            backoff_base=usec(50), backoff_multiplier=2.0, backoff_cap=usec(300), jitter=0.0
        )
        assert policy.backoff_before(2) == pytest.approx(usec(50))
        assert policy.backoff_before(3) == pytest.approx(usec(100))
        assert policy.backoff_before(4) == pytest.approx(usec(200))
        assert policy.backoff_before(5) == pytest.approx(usec(300))
        assert policy.backoff_before(9) == pytest.approx(usec(300))

    def test_jitter_is_deterministic_per_seed_token_attempt(self):
        policy = RetryPolicy(seed=7)
        a = policy.backoff_before(3, token=42)
        assert a == policy.backoff_before(3, token=42)
        assert a != policy.backoff_before(3, token=43)
        assert a != policy.backoff_before(4, token=42)
        assert a != RetryPolicy(seed=8).backoff_before(3, token=42)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(backoff_base=usec(100), backoff_cap=usec(100), jitter=0.25)
        for token in range(50):
            value = policy.backoff_before(2, token=token)
            assert usec(75) <= value <= usec(125)

    def test_timeout_clipped_by_deadline(self):
        policy = RetryPolicy(attempt_timeout=usec(80), deadline=usec(100))
        assert policy.timeout_for(1) == pytest.approx(usec(80))
        assert policy.timeout_for(2, elapsed=usec(50)) == pytest.approx(usec(50))
        assert policy.deadline_expired(usec(100))
        assert not policy.deadline_expired(usec(99))

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.attempts_exhausted(2)
        assert policy.attempts_exhausted(3)

    def test_factories_split_deadline_semantics(self):
        spec = RecoverySpec()
        writes = RetryPolicy.for_writes(spec)
        reads = RetryPolicy.for_reads(spec)
        assert math.isinf(writes.deadline)  # durability beats latency
        assert reads.deadline == spec.read_deadline

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RecoverySpec(hbm_high_watermark=0.5, hbm_low_watermark=0.9)


class TestRetryDeadlineEdges:
    """Deadline-exhaustion corners of the retry machinery."""

    def test_timeout_for_is_zero_once_the_deadline_is_spent(self):
        policy = RetryPolicy(attempt_timeout=usec(80), deadline=usec(100))
        assert policy.remaining(usec(150)) == 0.0
        assert policy.timeout_for(3, elapsed=usec(150)) == 0.0
        assert policy.timeout_for(3, elapsed=usec(100)) == 0.0

    def test_remaining_is_unbounded_for_write_policies(self):
        writes = RetryPolicy.for_writes(RecoverySpec())
        assert math.isinf(writes.remaining(msec(500)))
        assert not writes.deadline_expired(msec(500))

    def test_near_zero_read_budget_degrades_after_one_attempt(self):
        """A read whose deadline is consumed by its very first attempt
        must spend exactly that attempt and then answer "unavailable" —
        no second probe, no backoff spin, no silence."""
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        driver, locations = _write_then_locate(sim, tier, testbed)
        tier.read_retry = RetryPolicy(
            attempt_timeout=msec(1), deadline=usec(1), max_attempts=4, jitter=0.0
        )
        testbed.server(locations[0]).fail()

        start = sim.now
        result = sim.run(until=driver.run_reads([0], concurrency=1))
        assert result.requests == 1
        assert result.payload_bytes == 0
        assert tier.reads_unavailable.value == 1
        assert tier.read_failovers.value == 1  # the single expired attempt
        assert sim.now - start <= msec(1)
        sim.run()

    def test_all_breakers_open_bounds_an_unbounded_write_deadline(self):
        """Write retries have deadline=inf (durability beats latency);
        the circuit breakers must still bound the loop when every server
        is doomed, releasing every replication claim on the way out."""
        from repro.experiments.ext_overload import overload_platform

        sim = Simulator()
        testbed = Testbed(sim, overload_platform(), n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        admission = tier.admission
        assert admission is not None
        for server in testbed.storage_servers:
            for _ in range(admission.spec.breaker_threshold):
                admission.record_server_failure(server.address)
            assert not admission.breaker_for(server.address).allow()
        message = WriteRequestFactory(testbed.platform, seed=FAULT_SEED).make()
        first = testbed.storage_servers[0]
        testbed.policy.claim(first)
        errors = []

        def attempt():
            try:
                yield from tier._write_replica(first, message, message.payload)
            except RuntimeError as err:
                errors.append(str(err))

        sim.run(until=sim.process(attempt()))
        assert len(errors) == 1  # bounded, despite deadline=inf
        assert "no healthy storage server" in errors[0] or "short-circuited" in errors[0]
        assert admission.short_circuits.value == len(testbed.storage_servers)
        for server in testbed.storage_servers:
            assert testbed.policy.outstanding(server) == 0, server.address
        sim.run()


def _linked_pair(sim):
    spec = NetworkSpec()
    a = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "a.port"), "a", spec=spec)
    b = RoceEndpoint(sim, NetworkPort(sim, gbps(100), "b.port"), "b", spec=spec)
    return a.connect(b)


def _reply(request_id):
    return Message("storage_write_reply", "b", "a", header={"in_reply_to": request_id})


class TestResponseMatcher:
    def test_unmatched_ring_stays_bounded(self):
        sim = Simulator()
        qp = _linked_pair(sim)
        matcher = ResponseMatcher(sim, qp)
        n = ResponseMatcher.UNMATCHED_LIMIT + 36

        def flood():
            for i in range(n):
                yield qp.peer.send(_reply(10_000 + i))

        sim.process(flood())
        sim.run()
        assert matcher.unexpected_replies.value == n
        assert len(matcher.unmatched) == ResponseMatcher.UNMATCHED_LIMIT
        # The ring keeps the newest replies and dropped the oldest.
        assert matcher.unmatched[-1].header["in_reply_to"] == 10_000 + n - 1
        assert matcher.unmatched[0].header["in_reply_to"] == 10_036

    def test_forgotten_reply_counts_as_late_not_unexpected(self):
        sim = Simulator()
        qp = _linked_pair(sim)
        matcher = ResponseMatcher(sim, qp)
        event = matcher.expect(7)
        matcher.forget(7)

        def late():
            yield qp.peer.send(_reply(7))

        sim.process(late())
        sim.run()
        assert matcher.late_replies.value == 1
        assert matcher.unexpected_replies.value == 0
        assert len(matcher.unmatched) == 0
        assert not event.triggered

    def test_forget_without_expect_is_a_noop(self):
        sim = Simulator()
        qp = _linked_pair(sim)
        matcher = ResponseMatcher(sim, qp)
        matcher.forget(99)  # never expected: must not whitelist id 99

        def send():
            yield qp.peer.send(_reply(99))

        sim.process(send())
        sim.run()
        assert matcher.late_replies.value == 0
        assert matcher.unexpected_replies.value == 1

    def test_double_expect_rejected(self):
        sim = Simulator()
        qp = _linked_pair(sim)
        matcher = ResponseMatcher(sim, qp)
        matcher.expect(1)
        with pytest.raises(ValueError):
            matcher.expect(1)


def _write_then_locate(sim, tier, testbed, n_writes=8, concurrency=4, seed=1):
    """Run a short write phase; return (driver, replica addresses of LBA 0)."""
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(testbed.platform, seed=seed),
        concurrency=concurrency,
        warmup_fraction=0.0,
    )
    sim.run(until=driver.run(n_writes))
    return driver, tier._block_locations[(0, 0)]


class TestReadFailover:
    @pytest.mark.parametrize("tier_factory", [
        lambda sim, testbed: CpuOnlyMiddleTier(sim, testbed, n_workers=2),
        lambda sim, testbed: SmartDsMiddleTier(sim, testbed, n_ports=1),
    ], ids=["cpu-only", "smartds"])
    def test_read_survives_primary_replica_failure(self, tier_factory):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = tier_factory(sim, testbed)
        driver, locations = _write_then_locate(sim, tier, testbed)
        testbed.server(locations[0]).fail()  # the replica attempt 1 targets

        result = sim.run(until=driver.run_reads([0], concurrency=1))
        assert result.requests == 1
        assert result.payload_bytes == testbed.platform.workload.block_size
        assert tier.read_failovers.value >= 1
        assert tier.reads_unavailable.value == 0
        sim.run()  # full drain: the conftest audit proves nothing stranded

    @pytest.mark.parametrize("tier_factory", [
        lambda sim, testbed: CpuOnlyMiddleTier(sim, testbed, n_workers=2),
        lambda sim, testbed: SmartDsMiddleTier(sim, testbed, n_ports=1),
    ], ids=["cpu-only", "smartds"])
    def test_read_with_all_replicas_down_degrades_to_unavailable(self, tier_factory):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = tier_factory(sim, testbed)
        driver, locations = _write_then_locate(sim, tier, testbed)
        for address in locations:
            testbed.server(address).fail()

        start = sim.now
        result = sim.run(until=driver.run_reads([0], concurrency=1))
        assert result.requests == 1  # the VM got an answer, not silence
        assert result.payload_bytes == 0
        assert tier.reads_unavailable.value == 1
        assert sim.now - start <= tier.read_retry.deadline + msec(1)
        sim.run()  # no stranded _fetch_and_reply process may survive this

    def test_suspected_replicas_short_circuit_to_unavailable(self):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        driver, locations = _write_then_locate(sim, tier, testbed)
        for address in locations:
            testbed.server(address).fail()
        sim.run(until=sim.now + msec(5))  # heartbeats suspect all three
        assert all(address in monitor.suspected for address in locations)

        result = sim.run(until=driver.run_reads([0], concurrency=1))
        assert result.payload_bytes == 0
        assert tier.reads_unavailable.value == 1
        # Every replica suspected: the read gave up without probing them.
        assert tier.read_failovers.value == 0
        monitor.stop()

    def test_heartbeat_monitor_detects_recovery(self):
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=2)
        monitor = HeartbeatMonitor(sim, tier, interval=msec(1), timeout=msec(1))
        tier.start()
        victim = testbed.storage_servers[2]
        victim.fail()
        sim.run(until=sim.now + msec(5))
        assert victim.address in monitor.suspected
        assert not tier.health.is_healthy(victim.address)

        victim.recover()
        sim.run(until=sim.now + msec(5))
        assert victim.address not in monitor.suspected
        assert monitor.recoveries_detected.value >= 1
        assert tier.health.is_healthy(victim.address)
        monitor.stop()


class TestClaimCompleteBalance:
    def test_outstanding_drops_to_zero_after_chaotic_run(self):
        """Fail-over timeouts must not leak replication-policy claims."""
        rng = random.Random(FAULT_SEED)
        sim = Simulator()
        testbed = Testbed(sim, n_storage_servers=5)
        tier = CpuOnlyMiddleTier(sim, testbed, n_workers=4, replica_timeout=msec(1))
        driver = ClientDriver(
            sim,
            tier,
            WriteRequestFactory(testbed.platform, seed=FAULT_SEED),
            concurrency=8,
            warmup_fraction=0.0,
        )

        def chaos():
            for _ in range(2):
                yield sim.timeout(msec(rng.uniform(0.1, 0.4)))
                victim = rng.choice([s for s in testbed.storage_servers if not s.failed])
                victim.fail()
                yield sim.timeout(msec(rng.uniform(1.5, 2.5)))
                victim.recover()

        sim.process(chaos())
        result = sim.run(until=driver.run(160))
        sim.run()  # drain every in-flight retry, late ack, and timer
        assert result.requests == 160
        assert tier.failovers.value > 0  # the fail-over path actually ran
        for server in testbed.storage_servers:
            assert testbed.policy.outstanding(server) == 0, server.address


class TestAllocatorDegradation:
    def test_double_free_raises(self):
        allocator = DeviceMemoryAllocator(kib(64))
        buffer = allocator.alloc(1024)
        allocator.free(buffer)
        assert allocator.occupancy.value == 0
        with pytest.raises(ValueError, match="double free"):
            allocator.free(buffer)
        assert allocator.occupancy.value == 0  # accounting unharmed

    def test_try_alloc_respects_admission_watermark(self):
        allocator = DeviceMemoryAllocator(10_000, high_watermark=0.9, low_watermark=0.5)
        first = allocator.try_alloc(9_000)
        assert first is not None
        assert allocator.try_alloc(1) is None  # above the admission limit
        # The hard path still works up to physical capacity...
        extra = allocator.alloc(1_000)
        with pytest.raises(MemoryError):
            allocator.alloc(1)
        allocator.free(extra)
        allocator.free(first)

    def test_alloc_within_waits_for_headroom(self):
        sim = Simulator()
        allocator = DeviceMemoryAllocator(
            10_000, sim=sim, high_watermark=0.9, low_watermark=0.5
        )
        hog = allocator.alloc(9_000)

        def release():
            yield sim.timeout(usec(10))
            allocator.free(hog)

        sim.process(release())
        got = sim.run(until=sim.process(allocator.alloc_within(2_000, max_wait=usec(100))))
        assert got is not None and got.size == 2_000
        assert allocator.alloc_deferred.value == 1
        assert allocator.alloc_rejected.value == 0
        allocator.free(got)
        sim.run()

    def test_alloc_within_gives_up_at_the_deadline(self):
        sim = Simulator()
        allocator = DeviceMemoryAllocator(
            10_000, sim=sim, high_watermark=0.9, low_watermark=0.5
        )
        allocator.alloc(9_000)  # never freed: no headroom will appear
        got = sim.run(until=sim.process(allocator.alloc_within(2_000, max_wait=usec(50))))
        assert got is None
        assert allocator.alloc_rejected.value == 1
        sim.run()


class TestReclaimOrdering:
    """Elastic reclaim and the strict-FIFO headroom queue."""

    def _allocator(self, capacity=10_000):
        sim = Simulator()
        return sim, DeviceMemoryAllocator(
            capacity, sim=sim, high_watermark=0.9, low_watermark=0.5
        )

    def test_gated_alloc_consults_reclaimers_before_refusing(self):
        sim, allocator = self._allocator()
        elastic = [allocator.alloc(2_000), allocator.alloc(2_000)]

        def shed(nbytes):
            freed = 0
            while elastic and freed < nbytes:
                buffer = elastic.pop()
                allocator.free(buffer)
                freed += buffer.size
            return freed

        allocator.register_reclaimer(shed)
        hog = allocator.alloc(5_500)  # 9_500 total: above the admission limit
        got = allocator.try_alloc(2_000)
        assert got is not None
        assert allocator.bytes_reclaimed.value >= 2_000
        allocator.free(got)
        allocator.free(hog)

    def test_reclaim_drains_to_the_low_watermark_not_the_minimum(self):
        """Shedding only enough for the current request would keep
        occupancy glued to the admission gate; the drain target is the
        contract (see DeviceMemoryAllocator.try_alloc)."""
        sim, allocator = self._allocator()
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=10_000), name="t.cache"
        )
        for block in range(4):
            token = cache.begin_fill((0, block))
            cache.offer((0, block), Payload.synthetic(1_000, 1.0), token)
        hog = allocator.alloc(5_200)  # 9_200 total: above the admission limit
        got = allocator.try_alloc(500)
        assert got is not None
        # Only 700 bytes were needed to admit, but the reclaim aimed at
        # the drain target (5_000) and shed every cache entry on the way.
        assert cache.sheds.value == 4
        assert allocator.allocated == 5_200 + 500  # no elastic bytes left
        allocator.free(got)
        allocator.free(hog)

    def test_headroom_waiters_wake_in_fifo_order(self):
        sim, allocator = self._allocator()
        hog = allocator.alloc(9_000)
        completions = []

        def waiter(tag):
            buffer = yield from allocator.alloc_within(1_200, max_wait=usec(500))
            assert buffer is not None, tag
            completions.append(tag)

        def arrivals():
            for tag in ("first", "second", "third"):
                sim.process(waiter(tag))
                yield sim.timeout(usec(1))
            yield sim.timeout(usec(10))
            allocator.free(hog)

        sim.process(arrivals())
        sim.run()
        assert completions == ["first", "second", "third"]
        assert allocator.alloc_rejected.value == 0  # nobody starved

    def test_small_waiters_do_not_starve_a_large_head_waiter(self):
        sim, allocator = self._allocator()
        hogs = [allocator.alloc(3_000) for _ in range(3)]
        completions = []

        def waiter(tag, size):
            buffer = yield from allocator.alloc_within(size, max_wait=usec(500))
            assert buffer is not None, tag
            completions.append(tag)

        def arrivals():
            sim.process(waiter("large", 4_500))
            yield sim.timeout(usec(1))
            sim.process(waiter("small-a", 200))
            sim.process(waiter("small-b", 200))
            # Frees drip in; the large head waiter must get the first
            # window that fits it, not lose every race to the small ones.
            for hog in hogs:
                yield sim.timeout(usec(10))
                allocator.free(hog)

        sim.process(arrivals())
        sim.run()
        assert completions[0] == "large"
        assert len(completions) == 3

    def test_expired_waiters_leave_the_queue(self):
        sim, allocator = self._allocator()
        allocator.alloc(9_000)  # never freed
        got = sim.run(until=sim.process(allocator.alloc_within(2_000, max_wait=usec(50))))
        assert got is None
        assert allocator.waiters == 0  # no dead entry left to block the head
        sim.run()

    def test_cache_shed_unblocks_a_parked_waiter(self):
        """End of the elastic contract: a request waiting for headroom
        is woken by the cache shedding, within its bounded wait."""
        sim, allocator = self._allocator()
        cache = HotBlockCache(
            sim, allocator, CacheSpec(enabled=True, capacity_bytes=10_000), name="t.cache"
        )
        for block in range(4):
            token = cache.begin_fill((0, block))
            assert cache.offer((0, block), Payload.synthetic(1_000, 1.0), token)
        hog = allocator.alloc(5_200)  # cache 4_000 + 5_200: gate closed

        got = sim.run(until=sim.process(allocator.alloc_within(1_000, max_wait=usec(100))))
        assert got is not None
        assert cache.sheds.value > 0
        assert allocator.alloc_rejected.value == 0
        allocator.free(got)
        allocator.free(hog)
        sim.run()


def _hbm_burst(hbm_capacity, n_writes=64, recv_window=32, concurrency=8, seed=5):
    """A SmartDS write burst against a shrunk HBM; returns (tier, result)."""
    sim = Simulator()
    testbed = Testbed(sim, n_storage_servers=5)
    tier = SmartDsMiddleTier(
        sim, testbed, n_ports=1, recv_window=recv_window, hbm_capacity=hbm_capacity
    )
    driver = ClientDriver(
        sim,
        tier,
        WriteRequestFactory(testbed.platform, seed=seed),
        concurrency=concurrency,
        warmup_fraction=0.0,
    )
    result = sim.run(until=driver.run(n_writes))
    sim.run()
    return tier, result


class TestGracefulDegradation:
    def test_shrunk_hbm_degrades_instead_of_crashing(self):
        tier, result = _hbm_burst(kib(160))
        allocator = tier.device.allocator
        assert result.requests == 64  # every write acked, none crashed
        assert tier.requests_degraded.value > 0
        assert allocator.alloc_rejected.value > 0
        # The watermark gate held: occupancy never crossed admission.
        assert allocator.occupancy.peak <= allocator.admission_limit

    def test_degradation_counters_are_deterministic(self):
        def signature():
            tier, result = _hbm_burst(kib(192))
            allocator = tier.device.allocator
            return (
                result.requests,
                tier.requests_degraded.value,
                allocator.alloc_deferred.value,
                allocator.alloc_rejected.value,
                tier.device.host_path_fallbacks.value,
                allocator.occupancy.peak,
            )

        first = signature()
        assert first[1] > 0  # the shrunk HBM actually forced degradation
        assert first == signature()

    def test_starved_window_falls_back_to_host_path_ingress(self):
        """With a tiny window and HBM, descriptors run out entirely and
        whole frames must ship to host memory instead of splitting."""
        tier, result = _hbm_burst(kib(12), n_writes=24, recv_window=2, concurrency=6)
        assert result.requests == 24
        assert tier.device.host_path_fallbacks.value > 0
        assert tier.requests_degraded.value > 0


class TestChaosExperimentCell:
    def test_acked_writes_stay_durable_under_full_chaos(self):
        from repro.experiments.ext_chaos import measure_cell

        cell = measure_cell(1.0, FAULT_SEED, n_writes=48)
        assert cell["durability"] == pytest.approx(1.0)
        assert cell["read_availability"] >= 0.9
        assert cell["write_p99_us"] > 0

    def test_healthy_baseline_has_no_failovers(self):
        from repro.experiments.ext_chaos import measure_cell

        cell = measure_cell(0.0, FAULT_SEED, n_writes=32)
        assert cell["durability"] == pytest.approx(1.0)
        assert cell["read_availability"] == pytest.approx(1.0)
        assert cell["write_failovers"] == 0
        assert cell["degraded_fraction"] == 0.0
